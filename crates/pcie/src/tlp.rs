//! TLP segmentation arithmetic — the paper's Table 3 in code.
//!
//! Moving `N` payload bytes across a PCIe hop requires `ceil(N / MTU)`
//! data-bearing TLPs, where the MTU is the Maximum Payload Size negotiated
//! with the endpoint behind that hop (512 B for the host, 128 B for the
//! Bluefield-2 SoC). DMA *reads* additionally need read-request TLPs
//! (segmented by MRRS) and return data as completion TLPs.

/// Number of data-bearing TLPs to carry `bytes` of payload at `mtu`.
///
/// Zero bytes need zero data TLPs (a 0-byte RDMA op never touches DMA;
/// see the paper's Figure 11 methodology).
///
/// # Panics
///
/// Panics if `mtu == 0`.
///
/// # Examples
///
/// ```
/// use pcie_model::tlp::tlp_count;
///
/// assert_eq!(tlp_count(1024, 512), 2);
/// assert_eq!(tlp_count(1025, 512), 3);
/// assert_eq!(tlp_count(1024, 128), 8);
/// assert_eq!(tlp_count(0, 512), 0);
/// ```
#[inline]
pub const fn tlp_count(bytes: u64, mtu: u64) -> u64 {
    assert!(mtu > 0, "PCIe MTU must be positive");
    bytes.div_ceil(mtu)
}

/// Number of memory-read-request TLPs to request `bytes`, segmented at the
/// Maximum Read Request Size.
///
/// # Panics
///
/// Panics if `mrrs == 0`.
#[inline]
pub const fn read_request_tlps(bytes: u64, mrrs: u64) -> u64 {
    assert!(mrrs > 0, "MRRS must be positive");
    bytes.div_ceil(mrrs)
}

/// Number of completion-with-data TLPs returning `bytes`, segmented at the
/// completer's MPS.
#[inline]
pub const fn completion_tlps(bytes: u64, mps: u64) -> u64 {
    tlp_count(bytes, mps)
}

/// Number of posted-write TLPs carrying `bytes`, segmented at MPS.
#[inline]
pub const fn write_tlps(bytes: u64, mps: u64) -> u64 {
    tlp_count(bytes, mps)
}

/// The TLP cost of one DMA operation on one PCIe hop, split by direction.
///
/// `towards_endpoint` flows from the switch/NIC to the memory endpoint
/// (write data, read requests); `from_endpoint` flows back (read
/// completions, write acknowledgements are DLLP-level and not counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlpBudget {
    /// TLPs sent towards the memory endpoint.
    pub towards_endpoint: u64,
    /// TLPs returned from the memory endpoint.
    pub from_endpoint: u64,
}

impl TlpBudget {
    /// TLP budget for a DMA write of `bytes` at the endpoint's MPS.
    ///
    /// Writes are *posted*: data TLPs flow towards the endpoint and no
    /// transaction-layer response returns (the paper's Figure 3).
    pub const fn dma_write(bytes: u64, mps: u64) -> TlpBudget {
        TlpBudget {
            towards_endpoint: write_tlps(bytes, mps),
            from_endpoint: 0,
        }
    }

    /// TLP budget for a DMA read of `bytes`: request TLPs towards the
    /// endpoint (segmented at MRRS), completions back (segmented at MPS).
    pub const fn dma_read(bytes: u64, mps: u64, mrrs: u64) -> TlpBudget {
        TlpBudget {
            towards_endpoint: read_request_tlps(bytes, mrrs),
            from_endpoint: completion_tlps(bytes, mps),
        }
    }

    /// Total TLPs in both directions.
    pub const fn total(self) -> u64 {
        self.towards_endpoint + self.from_endpoint
    }

    /// Component-wise sum of two budgets.
    pub const fn plus(self, other: TlpBudget) -> TlpBudget {
        TlpBudget {
            towards_endpoint: self.towards_endpoint + other.towards_endpoint,
            from_endpoint: self.from_endpoint + other.from_endpoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiples() {
        assert_eq!(tlp_count(512, 512), 1);
        assert_eq!(tlp_count(512, 128), 4);
    }

    #[test]
    fn rounding_up() {
        assert_eq!(tlp_count(1, 512), 1);
        assert_eq!(tlp_count(513, 512), 2);
        assert_eq!(tlp_count(129, 128), 2);
    }

    #[test]
    fn paper_table3_host_vs_soc() {
        // Table 3: N bytes need ceil(N/512) TLPs towards the host but
        // ceil(N/128) towards the SoC — a 4x packet blowup.
        let n = 1 << 20; // 1 MiB
        assert_eq!(tlp_count(n, 128), 4 * tlp_count(n, 512));
    }

    #[test]
    fn write_budget_is_one_directional() {
        let b = TlpBudget::dma_write(4096, 512);
        assert_eq!(b.towards_endpoint, 8);
        assert_eq!(b.from_endpoint, 0);
        assert_eq!(b.total(), 8);
    }

    #[test]
    fn read_budget_has_requests_and_completions() {
        let b = TlpBudget::dma_read(4096, 512, 512);
        assert_eq!(b.towards_endpoint, 8); // requests at MRRS=512
        assert_eq!(b.from_endpoint, 8); // completions at MPS=512
                                        // Large MRRS cuts request TLPs but not completions:
        let b2 = TlpBudget::dma_read(4096, 512, 4096);
        assert_eq!(b2.towards_endpoint, 1);
        assert_eq!(b2.from_endpoint, 8);
    }

    #[test]
    fn budget_plus() {
        let a = TlpBudget::dma_write(512, 512);
        let b = TlpBudget::dma_read(512, 512, 512);
        let s = a.plus(b);
        assert_eq!(s.towards_endpoint, 2);
        assert_eq!(s.from_endpoint, 1);
    }

    #[test]
    fn zero_bytes_zero_tlps() {
        assert_eq!(TlpBudget::dma_write(0, 512).total(), 0);
        assert_eq!(TlpBudget::dma_read(0, 512, 512).total(), 0);
    }
}
