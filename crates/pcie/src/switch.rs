//! The SmartNIC-internal PCIe switch.
//!
//! Bluefield-2 integrates a PCIe switch that bridges the NIC cores (via
//! PCIe1), the host (via PCIe0) and the SoC (attached directly to the
//! switch, not via a PCIe channel — §2.3). Every path that crosses the
//! switch pays its store-and-forward latency, which the paper puts at
//! 150–200 ns one way; this is the SmartNIC "performance tax" of §3.1.

use simnet::time::Nanos;

/// Static description of a PCIe switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// One-way traversal latency per crossing.
    pub crossing_latency: Nanos,
}

impl SwitchSpec {
    /// A switch with the paper's quoted 150–200 ns traversal; we take the
    /// midpoint.
    pub fn bluefield2() -> Self {
        SwitchSpec {
            crossing_latency: Nanos::new(175),
        }
    }

    /// A switch with a custom latency (for ablations).
    pub fn with_latency(crossing_latency: Nanos) -> Self {
        SwitchSpec { crossing_latency }
    }

    /// Latency of `crossings` traversals.
    pub fn latency(&self, crossings: u32) -> Nanos {
        self.crossing_latency * crossings as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluefield_default_in_paper_range() {
        let s = SwitchSpec::bluefield2();
        let ns = s.crossing_latency.as_nanos();
        assert!((150..=200).contains(&ns), "{ns}");
    }

    #[test]
    fn multiple_crossings_scale_linearly() {
        let s = SwitchSpec::with_latency(Nanos::new(100));
        assert_eq!(s.latency(0), Nanos::ZERO);
        assert_eq!(s.latency(3), Nanos::new(300));
    }
}
