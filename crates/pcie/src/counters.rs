//! Hardware-style PCIe performance counters.
//!
//! Bluefield exposes per-channel packet counters [paper ref 29]; the
//! authors used them to produce Figure 8(b) and Figure 9(b). The simulator
//! mirrors that observability: every component that pushes TLPs across a
//! link also tick these counters, and the figure harness reads them back.

use std::collections::BTreeMap;

use simnet::time::{Nanos, Rate};

/// Identifies one PCIe channel of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// The channel between NIC cores and the PCIe switch ("PCIe1").
    Pcie1,
    /// The channel between the PCIe switch and the host ("PCIe0").
    Pcie0,
    /// The requester-side host PCIe channel (client machines).
    ClientPcie,
    /// The direct attach between switch and SoC memory (not a PCIe channel
    /// on real hardware, but counted for symmetric observability).
    SocAttach,
}

impl LinkId {
    /// All counted links, in display order.
    pub const ALL: [LinkId; 4] = [
        LinkId::Pcie1,
        LinkId::Pcie0,
        LinkId::ClientPcie,
        LinkId::SocAttach,
    ];

    /// Human-readable channel name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            LinkId::Pcie1 => "PCIe1",
            LinkId::Pcie0 => "PCIe0",
            LinkId::ClientPcie => "client-PCIe",
            LinkId::SocAttach => "SoC-attach",
        }
    }

    /// The latency-attribution hop charged for residency on this link
    /// (see `simnet::metrics`): components that reserve a link record
    /// their span under this category.
    pub fn hop(self) -> simnet::metrics::Hop {
        match self {
            LinkId::Pcie1 => simnet::metrics::Hop::Pcie1,
            LinkId::Pcie0 => simnet::metrics::Hop::Pcie0,
            LinkId::ClientPcie => simnet::metrics::Hop::ClientNic,
            LinkId::SocAttach => simnet::metrics::Hop::SocAttach,
        }
    }
}

/// Direction of a counted transfer relative to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CountDir {
    /// Towards the endpoint (downstream).
    Down,
    /// From the endpoint (upstream).
    Up,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Tally {
    tlps: u64,
    data_tlps: u64,
    bytes: u64,
}

/// Aggregated per-link, per-direction TLP and byte counts.
///
/// # Examples
///
/// ```
/// use pcie_model::counters::{CountDir, LinkId, PcieCounters};
/// use simnet::time::Nanos;
///
/// let mut c = PcieCounters::new();
/// c.count(LinkId::Pcie1, CountDir::Down, 8, 4096);
/// assert_eq!(c.tlps(LinkId::Pcie1), 8);
/// assert_eq!(c.bytes(LinkId::Pcie1), 4096);
/// let rate = c.tlp_rate(LinkId::Pcie1, Nanos::from_micros(1));
/// assert!((rate.as_mops() - 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PcieCounters {
    tallies: BTreeMap<(LinkId, CountDir), Tally>,
}

impl PcieCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `tlps` packets carrying `bytes` of payload on a link.
    /// Packets with zero payload are control TLPs (read requests etc.)
    /// and are excluded from the data-TLP tallies.
    pub fn count(&mut self, link: LinkId, dir: CountDir, tlps: u64, bytes: u64) {
        let t = self.tallies.entry((link, dir)).or_default();
        t.tlps += tlps;
        if bytes > 0 {
            t.data_tlps += tlps;
        }
        t.bytes += bytes;
    }

    /// Total TLPs on `link`, both directions.
    pub fn tlps(&self, link: LinkId) -> u64 {
        self.dir_tlps(link, CountDir::Down) + self.dir_tlps(link, CountDir::Up)
    }

    /// TLPs on `link` in one direction.
    pub fn dir_tlps(&self, link: LinkId, dir: CountDir) -> u64 {
        self.tallies.get(&(link, dir)).map_or(0, |t| t.tlps)
    }

    /// Data-bearing TLPs on `link`, both directions (Table 3's metric:
    /// the simplified model "omits control path packets").
    pub fn data_tlps(&self, link: LinkId) -> u64 {
        let d = self
            .tallies
            .get(&(link, CountDir::Down))
            .map_or(0, |t| t.data_tlps);
        let u = self
            .tallies
            .get(&(link, CountDir::Up))
            .map_or(0, |t| t.data_tlps);
        d + u
    }

    /// Data-bearing TLPs on `link` in one direction.
    pub fn dir_data_tlps(&self, link: LinkId, dir: CountDir) -> u64 {
        self.tallies.get(&(link, dir)).map_or(0, |t| t.data_tlps)
    }

    /// Total payload bytes on `link`, both directions.
    pub fn bytes(&self, link: LinkId) -> u64 {
        let d = self
            .tallies
            .get(&(link, CountDir::Down))
            .map_or(0, |t| t.bytes);
        let u = self
            .tallies
            .get(&(link, CountDir::Up))
            .map_or(0, |t| t.bytes);
        d + u
    }

    /// TLPs summed over every link — the "PCIe packets the SmartNIC must
    /// process" metric of Figure 9(b).
    pub fn total_tlps(&self) -> u64 {
        self.tallies.values().map(|t| t.tlps).sum()
    }

    /// TLP throughput on one link over an elapsed window.
    pub fn tlp_rate(&self, link: LinkId, elapsed: Nanos) -> Rate {
        if elapsed == Nanos::ZERO {
            return Rate::per_sec(0.0);
        }
        Rate::per_sec(self.tlps(link) as f64 / elapsed.as_secs_f64())
    }

    /// TLP throughput across all links over an elapsed window.
    pub fn total_tlp_rate(&self, elapsed: Nanos) -> Rate {
        if elapsed == Nanos::ZERO {
            return Rate::per_sec(0.0);
        }
        Rate::per_sec(self.total_tlps() as f64 / elapsed.as_secs_f64())
    }

    /// Resets all counters to zero (e.g. after warmup).
    pub fn reset(&mut self) {
        self.tallies.clear();
    }

    /// Snapshot used to compute deltas across a measurement window.
    pub fn snapshot(&self) -> PcieCounters {
        self.clone()
    }

    /// Per-link difference `self - earlier` (counters are monotonic).
    pub fn delta_since(&self, earlier: &PcieCounters) -> PcieCounters {
        let mut out = PcieCounters::new();
        for (&k, &t) in &self.tallies {
            let before = earlier.tallies.get(&k).copied().unwrap_or_default();
            out.tallies.insert(
                k,
                Tally {
                    tlps: t.tlps - before.tlps,
                    data_tlps: t.data_tlps - before.data_tlps,
                    bytes: t.bytes - before.bytes,
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates_per_direction() {
        let mut c = PcieCounters::new();
        c.count(LinkId::Pcie0, CountDir::Down, 3, 300);
        c.count(LinkId::Pcie0, CountDir::Up, 2, 200);
        c.count(LinkId::Pcie0, CountDir::Down, 1, 100);
        assert_eq!(c.dir_tlps(LinkId::Pcie0, CountDir::Down), 4);
        assert_eq!(c.dir_tlps(LinkId::Pcie0, CountDir::Up), 2);
        assert_eq!(c.tlps(LinkId::Pcie0), 6);
        assert_eq!(c.bytes(LinkId::Pcie0), 600);
    }

    #[test]
    fn links_are_independent() {
        let mut c = PcieCounters::new();
        c.count(LinkId::Pcie1, CountDir::Down, 5, 0);
        assert_eq!(c.tlps(LinkId::Pcie0), 0);
        assert_eq!(c.total_tlps(), 5);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut c = PcieCounters::new();
        c.count(LinkId::Pcie1, CountDir::Down, 10, 1000);
        let snap = c.snapshot();
        c.count(LinkId::Pcie1, CountDir::Down, 7, 700);
        c.count(LinkId::Pcie0, CountDir::Up, 2, 20);
        let d = c.delta_since(&snap);
        assert_eq!(d.tlps(LinkId::Pcie1), 7);
        assert_eq!(d.tlps(LinkId::Pcie0), 2);
        assert_eq!(d.bytes(LinkId::Pcie1), 700);
    }

    #[test]
    fn rates_over_window() {
        let mut c = PcieCounters::new();
        c.count(LinkId::Pcie1, CountDir::Up, 100, 0);
        let r = c.total_tlp_rate(Nanos::from_micros(1));
        assert!((r.as_mops() - 100.0).abs() < 1e-9);
        assert_eq!(c.tlp_rate(LinkId::Pcie1, Nanos::ZERO).as_per_sec(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = PcieCounters::new();
        c.count(LinkId::SocAttach, CountDir::Down, 1, 1);
        c.reset();
        assert_eq!(c.total_tlps(), 0);
    }

    #[test]
    fn link_names_match_paper() {
        assert_eq!(LinkId::Pcie1.name(), "PCIe1");
        assert_eq!(LinkId::Pcie0.name(), "PCIe0");
    }
}
