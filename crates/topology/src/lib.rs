//! `topology` — hardware and testbed descriptions.
//!
//! Every numeric constant of the reproduction lives in this crate, each
//! traceable either to the paper (Table 1, Table 2, quoted measurements)
//! or to public hardware specs (PCIe, DDR4). The simulator crates consume
//! these specs; the calibration tests in `snic-core` pin the emergent
//! behaviour to the paper's reported numbers.
//!
//! The three preset layers:
//!
//! * device specs — [`NicSpec::connectx6`], [`NicSpec::connectx4`],
//!   [`SmartNicSpec::bluefield2`];
//! * machine specs — [`MachineSpec::srv_with_bluefield`],
//!   [`MachineSpec::srv_with_rnic`], [`MachineSpec::cli`];
//! * the cluster — [`ClusterSpec::paper_testbed`] (3 SRV + 20 CLI behind
//!   a 100 Gbps InfiniBand switch, Table 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod machine;
pub mod nic;

pub use cluster::{ClusterSpec, WireSpec};
pub use machine::{CpuSpec, HostSpec, MachineSpec, NicDevice};
pub use nic::{DpaSpec, NicSpec, SmartNicSpec, SocSpec};
