//! Machine-level specifications (host CPU + memory + attached NIC).

use memsys::dram::DramSpec;
use memsys::llc::LlcSpec;
use pcie_model::link::{PcieGen, PcieLinkSpec};
use simnet::time::Nanos;

use crate::nic::{NicSpec, SmartNicSpec};

/// A host CPU complex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Total cores across sockets.
    pub cores: u32,
    /// Per-message handling time for two-sided RDMA (echo-server loop).
    pub msg_handle_time: Nanos,
    /// Per-request time to post a verb.
    pub post_time: Nanos,
    /// MMIO write latency from a core to the NIC doorbell.
    pub mmio_latency: Nanos,
    /// CPU-side cost per MMIO post: with write-combining the core retires
    /// the doorbell store long before it lands (< `mmio_latency`).
    pub mmio_issue: Nanos,
}

impl CpuSpec {
    /// The SRV hosts: 2x Xeon Gold 5317 (24 cores, Table 2).
    ///
    /// `msg_handle_time` calibrated to §2.1: 24 cores saturate at
    /// ~87 M messages/s on a 200 Gbps RNIC.
    pub fn srv_xeon() -> Self {
        CpuSpec {
            cores: 24,
            msg_handle_time: Nanos::new(276),
            post_time: Nanos::new(70),
            mmio_latency: Nanos::new(210),
            mmio_issue: Nanos::new(60),
        }
    }

    /// The CLI hosts: 2x E5-2650 v4 (24 cores @ 2.2 GHz, Table 2).
    pub fn cli_xeon() -> Self {
        CpuSpec {
            cores: 24,
            msg_handle_time: Nanos::new(340),
            post_time: Nanos::new(90),
            mmio_latency: Nanos::new(230),
            mmio_issue: Nanos::new(70),
        }
    }
}

/// A host's memory + PCIe front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// CPU complex.
    pub cpu: CpuSpec,
    /// DRAM subsystem.
    pub dram: DramSpec,
    /// LLC (DDIO target).
    pub llc: LlcSpec,
    /// Whether DDIO is enabled.
    pub ddio: bool,
    /// The host's PCIe link towards its NIC (PCIe0 for Bluefield hosts).
    pub pcie: PcieLinkSpec,
    /// One-way propagation latency of that link.
    pub pcie_latency: Nanos,
    /// Root-complex/IOMMU overhead per DMA crossing into host memory.
    /// The SoC memory skips this — the paper's suspicion for why READ to
    /// the SoC can beat even the RNIC baseline ("closer packaging of SoC
    /// memory and the PCIe switch", §3.2).
    pub root_complex_latency: Nanos,
}

impl HostSpec {
    /// An SRV host: PCIe 4.0 x16, 8-channel DDR4-2933, DDIO on.
    pub fn srv() -> Self {
        HostSpec {
            cpu: CpuSpec::srv_xeon(),
            dram: DramSpec::host_ddr4(),
            llc: LlcSpec::xeon_like(),
            ddio: true,
            pcie: PcieLinkSpec::new(PcieGen::Gen4, 16, 512, 512),
            pcie_latency: Nanos::new(125),
            root_complex_latency: Nanos::new(150),
        }
    }

    /// A CLI host: PCIe 3.0 x16, DDIO on.
    pub fn cli() -> Self {
        HostSpec {
            cpu: CpuSpec::cli_xeon(),
            dram: DramSpec::host_ddr4(),
            llc: LlcSpec::xeon_like(),
            ddio: true,
            pcie: PcieLinkSpec::new(PcieGen::Gen3, 16, 256, 512),
            pcie_latency: Nanos::new(140),
            root_complex_latency: Nanos::new(160),
        }
    }
}

/// Which NIC a machine carries.
// The SmartNIC variant dwarfs the RNIC one (the optional DPA plane
// adds ~100 B of calibration), but specs are plumbed by value a few
// times per scenario build and staying `Copy` keeps every call site
// simple — boxing would cost the `Copy` impl for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NicDevice {
    /// A plain RDMA NIC (no SoC).
    Rnic(NicSpec),
    /// An off-path SmartNIC.
    SmartNic(SmartNicSpec),
}

impl NicDevice {
    /// The NIC-core spec regardless of device kind.
    pub fn nic(&self) -> &NicSpec {
        match self {
            NicDevice::Rnic(n) => n,
            NicDevice::SmartNic(s) => &s.nic,
        }
    }

    /// The SmartNIC spec, if this device is one.
    pub fn smartnic(&self) -> Option<&SmartNicSpec> {
        match self {
            NicDevice::Rnic(_) => None,
            NicDevice::SmartNic(s) => Some(s),
        }
    }
}

/// A complete machine: host + NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Host side.
    pub host: HostSpec,
    /// Attached NIC.
    pub nic: NicDevice,
}

impl MachineSpec {
    /// An SRV machine carrying a Bluefield-2 (the system under test).
    pub fn srv_with_bluefield() -> Self {
        MachineSpec {
            host: HostSpec::srv(),
            nic: NicDevice::SmartNic(SmartNicSpec::bluefield2()),
        }
    }

    /// An SRV machine carrying a plain ConnectX-6 (the RNIC baseline).
    pub fn srv_with_rnic() -> Self {
        MachineSpec {
            host: HostSpec::srv(),
            nic: NicDevice::Rnic(NicSpec::connectx6()),
        }
    }

    /// An SRV machine carrying a (hypothetical, §5) Bluefield-3.
    pub fn srv_with_bluefield3() -> Self {
        MachineSpec {
            host: HostSpec::srv(),
            nic: NicDevice::SmartNic(SmartNicSpec::bluefield3()),
        }
    }

    /// An SRV machine carrying a Bluefield-3 with the DPA plane enabled
    /// (Chen et al.'s datapath-accelerator configuration).
    pub fn srv_with_bluefield3_dpa() -> Self {
        MachineSpec {
            host: HostSpec::srv(),
            nic: NicDevice::SmartNic(SmartNicSpec::bluefield3_dpa()),
        }
    }

    /// A CLI machine with a ConnectX-4 (request generator).
    pub fn cli() -> Self {
        MachineSpec {
            host: HostSpec::cli(),
            nic: NicDevice::Rnic(NicSpec::connectx4()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srv_two_sided_calibration() {
        // §2.1: 24 host cores reach ~87 Mpps of two-sided messages.
        let c = CpuSpec::srv_xeon();
        let mpps = c.cores as f64 / c.msg_handle_time.as_nanos() as f64 * 1e3;
        assert!((80.0..=95.0).contains(&mpps), "host two-sided {mpps} Mpps");
    }

    #[test]
    fn nic_device_accessors() {
        let m = MachineSpec::srv_with_bluefield();
        assert!(m.nic.smartnic().is_some());
        assert_eq!(m.nic.nic().name, "ConnectX-6");
        let r = MachineSpec::srv_with_rnic();
        assert!(r.nic.smartnic().is_none());
    }

    #[test]
    fn cli_pcie_is_gen3() {
        let m = MachineSpec::cli();
        assert_eq!(m.host.pcie.gen, PcieGen::Gen3);
        // Gen3 x16 =~ 126 Gbps, enough for the CX-4's 100 Gbps.
        assert!(m.host.pcie.raw_bandwidth().as_gbps() > 100.0);
    }

    #[test]
    fn soc_wimpier_than_host_for_messages() {
        let host = CpuSpec::srv_xeon();
        let soc = SmartNicSpec::bluefield2().soc;
        let host_rate = host.cores as f64 / host.msg_handle_time.as_nanos() as f64;
        let soc_rate = soc.cores as f64 / soc.msg_handle_time.as_nanos() as f64;
        // §3.2: two-sided throughput drops by up to ~64% on the SoC.
        let drop = 1.0 - soc_rate / host_rate;
        assert!((0.55..=0.75).contains(&drop), "SoC msg drop {drop:.2}");
    }

    #[test]
    fn soc_mmio_slower_than_host_mmio() {
        // Figure 10(a): posting from the SoC has much higher latency.
        let host = CpuSpec::srv_xeon();
        let soc = SmartNicSpec::bluefield2().soc;
        assert!(soc.mmio_latency > host.mmio_latency * 2);
    }
}
