//! NIC and SmartNIC device specifications.

use memsys::dram::DramSpec;
use pcie_model::link::{PcieGen, PcieLinkSpec};
use pcie_model::switch::SwitchSpec;
use simnet::time::{Bandwidth, Nanos};

/// Specification of the RDMA NIC-core complex (a ConnectX-class ASIC).
///
/// Processing-unit (PU) structure: the ASIC exposes `pu_total` request
/// processors. On Bluefield, a few are *reserved* per endpoint (host/SoC)
/// and the rest are shared — the paper's §4 microbenchmark ("most NIC
/// cores are still shared ... and only a few is dedicated") is how the
/// reservation is observable, and `pu_reserved_per_endpoint` encodes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Aggregate network bandwidth (all ports).
    pub network_bw: Bandwidth,
    /// Total request processing units.
    pub pu_total: u32,
    /// PUs reserved for each directly-attached endpoint (0 on plain RNICs).
    pub pu_reserved_per_endpoint: u32,
    /// PU occupancy to parse/execute one request (pipeline stage time).
    pub pu_request_time: Nanos,
    /// Number of concurrent DMA read contexts (outstanding request slots
    /// that can be waiting on PCIe completions at once).
    pub dma_contexts: u32,
    /// Number of concurrent posted-write engine slots. Smaller than the
    /// read pool: writes need no completion tracking but share the
    /// doorbell/egress scheduler.
    pub dma_write_contexts: u32,
    /// Fixed per-request DMA-context occupancy for reads, besides the
    /// PCIe round trip (descriptor handling, address translation,
    /// completion reassembly).
    pub dma_read_fixed: Nanos,
    /// Fixed per-request DMA-context occupancy for posted writes (no
    /// completion to reassemble, but flow-control credits to obtain).
    pub dma_write_fixed: Nanos,
    /// Completion-reorder buffer capacity in TLP slots. A DMA read whose
    /// completion stream exceeds this window degrades to a tag-limited
    /// fetch (the Figure 8 head-of-line collapse).
    pub reorder_tlp_slots: u64,
    /// Outstanding completion tags available once the reorder buffer is
    /// exceeded.
    pub completion_tags: u64,
    /// Time for the NIC to serve one MMIO doorbell write.
    pub doorbell_time: Nanos,
    /// Per-WQE time when the NIC fetches work-queue entries by DMA
    /// (doorbell batching), excluding the memory round trip.
    pub wqe_fetch_unit: Nanos,
}

impl NicSpec {
    /// NVIDIA ConnectX-6: 2x100 Gbps ports, the NIC-core complex of both
    /// the standalone RNIC and Bluefield-2 (paper Table 1).
    ///
    /// `pu_total`/`pu_request_time` are calibrated so the ASIC processes
    /// just over 195 M requests/s of 0 B traffic (§2.1) with ~176 M
    /// available to a single endpoint on Bluefield (§4: 352 Mpps summed
    /// over two paths vs 195 Mpps concurrently).
    pub fn connectx6() -> Self {
        NicSpec {
            name: "ConnectX-6",
            network_bw: Bandwidth::gbps(200.0),
            pu_total: 32,
            pu_reserved_per_endpoint: 3,
            pu_request_time: Nanos::new(163),
            dma_contexts: 234,
            dma_write_contexts: 128,
            dma_read_fixed: Nanos::new(1280),
            dma_write_fixed: Nanos::new(940),
            reorder_tlp_slots: 72 << 10,
            completion_tags: 90,
            doorbell_time: Nanos::new(80),
            wqe_fetch_unit: Nanos::new(20),
        }
    }

    /// Mellanox ConnectX-4: the 100 Gbps client NIC (paper Table 2 CLI).
    pub fn connectx4() -> Self {
        NicSpec {
            name: "ConnectX-4",
            network_bw: Bandwidth::gbps(100.0),
            pu_total: 16,
            pu_reserved_per_endpoint: 0,
            pu_request_time: Nanos::new(220),
            dma_contexts: 128,
            dma_write_contexts: 96,
            dma_read_fixed: Nanos::new(1400),
            dma_write_fixed: Nanos::new(1050),
            reorder_tlp_slots: 32 << 10,
            completion_tags: 64,
            doorbell_time: Nanos::new(90),
            wqe_fetch_unit: Nanos::new(25),
        }
    }

    /// NVIDIA ConnectX-7: the 400 Gbps NIC cores of Bluefield-3 (§5).
    ///
    /// Calibration note: the completion-tag pool scales with the reorder
    /// window — CX-7 doubles CX-6's 72Ki TLP slots, and Chen et al.'s
    /// BF-3 characterization shows large tag-limited READs *above* BF-2,
    /// not below. A value under CX-6's 90 would silently invert that.
    pub fn connectx7() -> Self {
        NicSpec {
            name: "ConnectX-7",
            network_bw: Bandwidth::gbps(400.0),
            pu_total: 48,
            pu_reserved_per_endpoint: 4,
            pu_request_time: Nanos::new(120),
            dma_contexts: 384,
            dma_write_contexts: 224,
            dma_read_fixed: Nanos::new(1100),
            dma_write_fixed: Nanos::new(800),
            reorder_tlp_slots: 144 << 10,
            completion_tags: 180,
            doorbell_time: Nanos::new(70),
            wqe_fetch_unit: Nanos::new(15),
        }
    }

    /// Peak 0 B request throughput of the whole ASIC in M requests/s.
    pub fn peak_request_rate_mops(&self) -> f64 {
        self.pu_total as f64 / self.pu_request_time.as_nanos() as f64 * 1e3
    }
}

/// Specification of the SmartNIC's on-board SoC (the ARM complex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocSpec {
    /// Number of SoC cores.
    pub cores: u32,
    /// Per-message CPU time for two-sided handling (echo-server loop).
    pub msg_handle_time: Nanos,
    /// Extra end-to-end latency of two-sided handling on the SoC versus
    /// the host (slower poll loop / cache refills on the wimpy cores) —
    /// behind the 21-30 % SEND/RECV latency gap of §3.2.
    pub msg_extra_latency: Nanos,
    /// Per-request CPU time to post a verb (build WQE etc.).
    pub post_time: Nanos,
    /// MMIO write latency from a SoC core to the NIC doorbell register.
    pub mmio_latency: Nanos,
    /// PCIe MTU negotiated for the SoC endpoint (Table 3: 128 B).
    pub pcie_mtu: u64,
    /// SoC DRAM subsystem.
    pub dram: DramSpec,
    /// Bandwidth of the direct switch/SoC-memory attach.
    pub attach_bw: Bandwidth,
    /// One-way latency of the switch/SoC-memory attach.
    pub attach_latency: Nanos,
}

impl SocSpec {
    /// The Bluefield-3 SoC: 16x ARMv8.2+ A78 cores (§5), DDR5-class
    /// memory, same 128 B PCIe MTU (the architecture is unchanged).
    pub fn bluefield3() -> Self {
        SocSpec {
            cores: 16,
            msg_handle_time: Nanos::new(190),
            msg_extra_latency: Nanos::new(350),
            post_time: Nanos::new(80),
            mmio_latency: Nanos::new(520),
            pcie_mtu: 128,
            dram: DramSpec::soc_ddr4(),
            attach_bw: Bandwidth::gbps(640.0),
            attach_latency: Nanos::new(20),
        }
    }

    /// The Bluefield-2 SoC: 8x ARM Cortex-A72 @ 2.75 GHz, 16 GB DDR4,
    /// no DDIO, 128 B PCIe MTU (Table 1, Table 3).
    ///
    /// `msg_handle_time` is calibrated to the paper's observation that
    /// two-sided throughput against the SoC drops by up to ~64 % versus
    /// the host (§3.2); `mmio_latency` to Figure 10(a)'s high SoC posting
    /// latency.
    pub fn bluefield2() -> Self {
        SocSpec {
            cores: 8,
            msg_handle_time: Nanos::new(290),
            msg_extra_latency: Nanos::new(550),
            post_time: Nanos::new(110),
            mmio_latency: Nanos::new(690),
            pcie_mtu: 128,
            dram: DramSpec::soc_ddr4(),
            attach_bw: Bandwidth::gbps(320.0),
            attach_latency: Nanos::new(25),
        }
    }
}

/// The BlueField-3 datapath accelerator (DPA): a plane of wimpy RISC-V
/// cores *inside* the NIC complex, kicked directly by arriving packets
/// with no PCIe crossing (Chen et al., "Demystifying Datapath
/// Accelerator Enhanced Off-path SmartNIC"). A DPA handler terminates a
/// request entirely on the NIC — neither PCIe1 nor the switch is
/// touched — but its working state must fit the tiny local scratch
/// memory; anything larger spills to SoC DRAM over the internal fabric
/// and pays `spill_latency` plus serialization at `spill_bw`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpaSpec {
    /// Number of DPA execution cores available to one handler group.
    pub cores: u32,
    /// Per-request core occupancy of a simple handler (parse + hash
    /// probe + reply build). Wimpy single-issue cores: several times a
    /// server-class host core's per-message time.
    pub handle_time: Nanos,
    /// Hardware kick latency from the NIC parser to a DPA thread
    /// activation (no doorbell, no PCIe).
    pub kick_latency: Nanos,
    /// Usable local scratch memory (aggregate handler heap). Working
    /// state beyond this spills to SoC DRAM on every request.
    pub scratch_bytes: u64,
    /// Round-trip latency of one spill access into SoC DRAM.
    pub spill_latency: Nanos,
    /// Serialization bandwidth of the spill channel into SoC DRAM.
    pub spill_bw: Bandwidth,
}

impl DpaSpec {
    /// The Bluefield-3 DPA, calibrated to Chen et al.: 16 RV cores
    /// behind a ~190 ns hardware kick, per-request handling roughly
    /// twice a Xeon core's, ~1 MiB of usable handler heap, and a
    /// ~750 ns spill round trip into SoC DRAM (the DPA reaches SoC
    /// memory through a narrow window, not a cache hierarchy).
    pub fn bluefield3() -> Self {
        DpaSpec {
            cores: 16,
            handle_time: Nanos::new(500),
            kick_latency: Nanos::new(190),
            scratch_bytes: 1 << 20,
            spill_latency: Nanos::new(750),
            spill_bw: Bandwidth::gbps(160.0),
        }
    }

    /// Peak request rate of the DPA plane when state fits scratch.
    pub fn peak_request_rate_mops(&self) -> f64 {
        self.cores as f64 / self.handle_time.as_nanos() as f64 * 1e3
    }

    /// True when `resident_bytes` of handler state fits local scratch.
    pub fn fits_scratch(&self, resident_bytes: u64) -> bool {
        resident_bytes <= self.scratch_bytes
    }

    /// Extra per-request service time when the handler spills: the SoC
    /// DRAM round trip plus serialization of the touched bytes.
    pub fn spill_cost(&self, touched_bytes: u64) -> Nanos {
        self.spill_latency + self.spill_bw.transfer_time(touched_bytes)
    }
}

/// A complete off-path SmartNIC: NIC cores + PCIe switch + SoC, plus the
/// two internal channels PCIe1 (NIC <-> switch) and PCIe0 (switch <->
/// host), following Figure 2(c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartNicSpec {
    /// The embedded NIC-core complex.
    pub nic: NicSpec,
    /// The on-board SoC.
    pub soc: SocSpec,
    /// The internal PCIe switch.
    pub switch: SwitchSpec,
    /// NIC cores <-> switch channel.
    pub pcie1: PcieLinkSpec,
    /// Switch <-> host channel.
    pub pcie0: PcieLinkSpec,
    /// One-way propagation latency of PCIe1. NIC cores and switch share
    /// the Bluefield package, so this hop is short; the PCIe0 hop to the
    /// host uses the host's own `pcie_latency`.
    pub pcie1_hop_latency: Nanos,
    /// The datapath-accelerator plane, when the product exposes one
    /// (Bluefield-3 with DPA firmware; `None` on BF-2 and on BF-3 used
    /// as a plain off-path part).
    pub dpa: Option<DpaSpec>,
}

impl SmartNicSpec {
    /// NVIDIA Bluefield-3 (§5 Discussion): 400 Gbps ConnectX-7 NIC
    /// cores, PCIe 5.0 internal channels, ARMv8.2+ A78 SoC — the *same*
    /// architecture as Bluefield-2, so every anomaly mechanism persists
    /// with rescaled parameters.
    pub fn bluefield3() -> Self {
        SmartNicSpec {
            nic: NicSpec::connectx7(),
            soc: SocSpec::bluefield3(),
            switch: SwitchSpec::with_latency(Nanos::new(150)),
            pcie1: PcieLinkSpec::new(PcieGen::Gen5, 16, 512, 512),
            pcie0: PcieLinkSpec::new(PcieGen::Gen5, 16, 512, 512),
            pcie1_hop_latency: Nanos::new(35),
            dpa: None,
        }
    }

    /// Bluefield-3 with the DPA plane enabled: identical off-path
    /// topology, plus [`DpaSpec::bluefield3`] handler cores that
    /// terminate requests on the NIC without any PCIe crossing.
    pub fn bluefield3_dpa() -> Self {
        SmartNicSpec {
            dpa: Some(DpaSpec::bluefield3()),
            ..Self::bluefield3()
        }
    }

    /// NVIDIA Bluefield-2 (Table 1): ConnectX-6 NIC cores, PCIe 4.0 x16
    /// internal channels, 175 ns switch crossing, 128 B SoC MTU and 512 B
    /// host MTU.
    pub fn bluefield2() -> Self {
        SmartNicSpec {
            nic: NicSpec::connectx6(),
            soc: SocSpec::bluefield2(),
            switch: SwitchSpec::bluefield2(),
            pcie1: PcieLinkSpec::new(PcieGen::Gen4, 16, 512, 512),
            pcie0: PcieLinkSpec::new(PcieGen::Gen4, 16, 512, 512),
            pcie1_hop_latency: Nanos::new(40),
            dpa: None,
        }
    }

    /// The extra one-way latency a SmartNIC adds on the path to host
    /// memory versus a plain RNIC: one switch crossing plus the PCIe1
    /// hop. The paper quotes 150-200 ns one way for the switch; READ pays
    /// it twice (request + completion), WRITE once (posted), matching the
    /// +0.6 us / +0.4 us asymmetry of §3.1.
    pub fn host_path_tax_oneway(&self) -> Nanos {
        self.switch.crossing_latency + self.pcie1_hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cx6_peak_rate_exceeds_195mpps() {
        // §2.1: "NIC cores can process more than 195 Mpps".
        let r = NicSpec::connectx6().peak_request_rate_mops();
        assert!(r > 195.0, "CX-6 peak {r} Mpps");
        assert!(r < 230.0, "CX-6 peak {r} Mpps implausibly high");
    }

    #[test]
    fn single_endpoint_share_matches_paper() {
        // §4: one endpoint alone reaches ~176 Mpps (352/2), both together
        // ~195 Mpps.
        let n = NicSpec::connectx6();
        let single = (n.pu_total - n.pu_reserved_per_endpoint) as f64
            / n.pu_request_time.as_nanos() as f64
            * 1e3;
        assert!(
            (165.0..=190.0).contains(&single),
            "single-endpoint share {single} Mpps"
        );
    }

    #[test]
    fn soc_reorder_threshold_is_9mb() {
        // Figure 8: READ to SoC collapses above ~9 MB payloads.
        let s = SmartNicSpec::bluefield2();
        let threshold = s.nic.reorder_tlp_slots * s.soc.pcie_mtu;
        assert_eq!(threshold, 9 << 20);
    }

    #[test]
    fn bf3_reorder_threshold_is_18mb() {
        // §5 / Chen et al.: CX-7 doubles the reorder window, so the
        // Figure-8 collapse knee moves to 144Ki slots x 128 B = 18 MB.
        let s = SmartNicSpec::bluefield3();
        let threshold = s.nic.reorder_tlp_slots * s.soc.pcie_mtu;
        assert_eq!(threshold, 18 << 20);
    }

    #[test]
    fn bf3_tag_pool_not_below_bf2() {
        // Regression: 72 tags would make BF-3's tag-limited large READs
        // *worse* than BF-2's (90 tags), inverting the generational
        // story. The pool scales with the doubled reorder window.
        let cx6 = NicSpec::connectx6();
        let cx7 = NicSpec::connectx7();
        assert!(
            cx7.completion_tags >= cx6.completion_tags,
            "CX-7 tags {} below CX-6's {}",
            cx7.completion_tags,
            cx6.completion_tags
        );
        assert_eq!(
            cx7.completion_tags * cx6.reorder_tlp_slots,
            cx6.completion_tags * cx7.reorder_tlp_slots,
            "tag pool should scale with the reorder window"
        );
    }

    #[test]
    fn dpa_terminates_without_pcie_and_spills_past_scratch() {
        let d = DpaSpec::bluefield3();
        // Wimpy plane: far above one host core, far below the ASIC.
        assert!(d.peak_request_rate_mops() > 10.0);
        assert!(d.peak_request_rate_mops() < NicSpec::connectx7().peak_request_rate_mops());
        assert!(d.fits_scratch(512 << 10));
        assert!(!d.fits_scratch(2 << 20));
        // Spill cost grows with the touched bytes.
        assert!(d.spill_cost(4096) > d.spill_cost(64));
        assert!(d.spill_cost(64) >= d.spill_latency);
        // Only the _dpa variant carries the plane; topology otherwise
        // identical to plain BF-3.
        assert!(SmartNicSpec::bluefield3().dpa.is_none());
        let with = SmartNicSpec::bluefield3_dpa();
        assert_eq!(with.dpa, Some(DpaSpec::bluefield3()));
        assert_eq!(with.nic, SmartNicSpec::bluefield3().nic);
    }

    #[test]
    fn host_reorder_threshold_never_hit_in_sweep() {
        // The host (512 B MTU) threshold lies beyond the paper's 16 MB
        // sweep, which is why SNIC(1) shows no collapse.
        let s = SmartNicSpec::bluefield2();
        let threshold = s.nic.reorder_tlp_slots * s.pcie0.mps;
        assert!(threshold > 16 << 20);
    }

    #[test]
    fn host_path_tax_in_paper_band() {
        let tax = SmartNicSpec::bluefield2().host_path_tax_oneway();
        // READ pays this twice; the paper measures +0.6 us end to end
        // (switch crossings plus serialization differences).
        assert!(
            (150..=350).contains(&tax.as_nanos()),
            "tax {tax} outside band"
        );
    }

    #[test]
    fn soc_mtu_vs_host_mtu() {
        let s = SmartNicSpec::bluefield2();
        assert_eq!(s.soc.pcie_mtu, 128);
        assert_eq!(s.pcie0.mps, 512);
    }

    #[test]
    fn cx4_is_slower_and_narrower() {
        let cx4 = NicSpec::connectx4();
        let cx6 = NicSpec::connectx6();
        assert!(cx4.network_bw.as_gbps() < cx6.network_bw.as_gbps());
        assert!(cx4.peak_request_rate_mops() < cx6.peak_request_rate_mops());
    }
}
