//! Cluster-level (testbed) description.

use simnet::time::{Bandwidth, Nanos};

use crate::machine::MachineSpec;

/// The network fabric between machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSpec {
    /// One-way latency between any two NICs through the switch (switch
    /// store-and-forward + SerDes + cables).
    pub one_way_latency: Nanos,
    /// Per-port bandwidth of the switch.
    pub port_bw: Bandwidth,
    /// Maximum switch ports one NIC may bond (§2.4: the 200 Gbps NICs
    /// connect with *two* 100 Gbps ports so the switch does not
    /// bottleneck them). Port-level arbitration in `snic-cluster`
    /// consumes this instead of assuming it in a comment.
    pub ports_per_nic: u32,
}

impl WireSpec {
    /// The Mellanox SB7890 100 Gbps InfiniBand switch of the paper's
    /// testbed. 200 Gbps NICs connect with two ports, so the switch does
    /// not bottleneck them (§2.4).
    pub fn sb7890() -> Self {
        WireSpec {
            one_way_latency: Nanos::new(450),
            port_bw: Bandwidth::gbps(100.0),
            ports_per_nic: 2,
        }
    }

    /// Number of switch ports a NIC of bandwidth `nic_bw` actually
    /// bonds: enough ports to carry its line rate, capped by the cabling
    /// limit [`WireSpec::ports_per_nic`]. A 100 Gbps ConnectX-4 gets one
    /// port; a 200 Gbps ConnectX-6 / Bluefield-2 gets two.
    pub fn ports_for(&self, nic_bw: Bandwidth) -> u32 {
        if self.port_bw.is_zero() {
            return 1;
        }
        let need = (nic_bw.as_gbps() / self.port_bw.as_gbps()).ceil() as u32;
        need.clamp(1, self.ports_per_nic.max(1))
    }

    /// Aggregate switch-side bandwidth available to a NIC of bandwidth
    /// `nic_bw` (ports × per-port bandwidth).
    pub fn nic_port_bw(&self, nic_bw: Bandwidth) -> Bandwidth {
        self.port_bw.scale(self.ports_for(nic_bw) as f64)
    }
}

/// The whole testbed: servers under test, client machines, and the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Server machines (responders / SmartNIC carriers).
    pub servers: Vec<MachineSpec>,
    /// Client machines (requesters).
    pub clients: Vec<MachineSpec>,
    /// Interconnect.
    pub wire: WireSpec,
}

impl ClusterSpec {
    /// The paper's rack-scale testbed (Table 2): 3 SRV machines (each can
    /// carry a Bluefield-2 or a ConnectX-6) and 20 CLI machines with
    /// ConnectX-4, all on one SB7890 switch.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            servers: vec![MachineSpec::srv_with_bluefield(); 3],
            clients: vec![MachineSpec::cli(); 20],
            wire: WireSpec::sb7890(),
        }
    }

    /// A testbed whose servers carry plain RNICs (the baseline rows).
    pub fn rnic_testbed() -> Self {
        ClusterSpec {
            servers: vec![MachineSpec::srv_with_rnic(); 3],
            clients: vec![MachineSpec::cli(); 20],
            wire: WireSpec::sb7890(),
        }
    }

    /// Maximum requester machines the paper uses to saturate a responder
    /// (§2.4: "up to eleven requester machines").
    pub const MAX_REQUESTERS: usize = 11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = ClusterSpec::paper_testbed();
        assert_eq!(t.servers.len(), 3);
        assert_eq!(t.clients.len(), 20);
        assert!(t.servers[0].nic.smartnic().is_some());
    }

    #[test]
    fn rnic_testbed_has_no_soc() {
        let t = ClusterSpec::rnic_testbed();
        assert!(t.servers[0].nic.smartnic().is_none());
    }

    #[test]
    fn wire_does_not_limit_200g_nics() {
        // Two 100 Gbps ports connect each 200 Gbps NIC (§2.4) — now an
        // explicit model, not a comment.
        let w = WireSpec::sb7890();
        assert_eq!(w.ports_per_nic, 2);
        assert_eq!(w.ports_for(Bandwidth::gbps(200.0)), 2);
        assert!(w.nic_port_bw(Bandwidth::gbps(200.0)).as_gbps() >= 200.0);
    }

    #[test]
    fn port_bonding_is_capped_and_floored() {
        let w = WireSpec::sb7890();
        // A 100 Gbps CX-4 needs (and gets) a single port.
        assert_eq!(w.ports_for(Bandwidth::gbps(100.0)), 1);
        // A hypothetical 400 Gbps NIC is capped at the cabling limit.
        assert_eq!(w.ports_for(Bandwidth::gbps(400.0)), 2);
        // Degenerate bandwidths still get one port.
        assert_eq!(w.ports_for(Bandwidth::gbps(0.0)), 1);
    }
}
