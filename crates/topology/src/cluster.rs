//! Cluster-level (testbed) description.

use simnet::time::{Bandwidth, Nanos};

use crate::machine::MachineSpec;

/// The network fabric between machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSpec {
    /// One-way latency between any two NICs through the switch (switch
    /// store-and-forward + SerDes + cables).
    pub one_way_latency: Nanos,
    /// Per-port bandwidth of the switch.
    pub port_bw: Bandwidth,
}

impl WireSpec {
    /// The Mellanox SB7890 100 Gbps InfiniBand switch of the paper's
    /// testbed. 200 Gbps NICs connect with two ports, so the switch does
    /// not bottleneck them (§2.4).
    pub fn sb7890() -> Self {
        WireSpec {
            one_way_latency: Nanos::new(450),
            port_bw: Bandwidth::gbps(100.0),
        }
    }
}

/// The whole testbed: servers under test, client machines, and the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Server machines (responders / SmartNIC carriers).
    pub servers: Vec<MachineSpec>,
    /// Client machines (requesters).
    pub clients: Vec<MachineSpec>,
    /// Interconnect.
    pub wire: WireSpec,
}

impl ClusterSpec {
    /// The paper's rack-scale testbed (Table 2): 3 SRV machines (each can
    /// carry a Bluefield-2 or a ConnectX-6) and 20 CLI machines with
    /// ConnectX-4, all on one SB7890 switch.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            servers: vec![MachineSpec::srv_with_bluefield(); 3],
            clients: vec![MachineSpec::cli(); 20],
            wire: WireSpec::sb7890(),
        }
    }

    /// A testbed whose servers carry plain RNICs (the baseline rows).
    pub fn rnic_testbed() -> Self {
        ClusterSpec {
            servers: vec![MachineSpec::srv_with_rnic(); 3],
            clients: vec![MachineSpec::cli(); 20],
            wire: WireSpec::sb7890(),
        }
    }

    /// Maximum requester machines the paper uses to saturate a responder
    /// (§2.4: "up to eleven requester machines").
    pub const MAX_REQUESTERS: usize = 11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = ClusterSpec::paper_testbed();
        assert_eq!(t.servers.len(), 3);
        assert_eq!(t.clients.len(), 20);
        assert!(t.servers[0].nic.smartnic().is_some());
    }

    #[test]
    fn rnic_testbed_has_no_soc() {
        let t = ClusterSpec::rnic_testbed();
        assert!(t.servers[0].nic.smartnic().is_none());
    }

    #[test]
    fn wire_does_not_limit_200g_nics() {
        // Two 100 Gbps ports connect each 200 Gbps NIC (§2.4).
        let w = WireSpec::sb7890();
        assert!(w.port_bw.as_gbps() * 2.0 >= 200.0);
    }
}
