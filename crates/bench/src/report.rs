//! Machine-readable `BENCH_<date>.json` perf-trajectory snapshots.
//!
//! The macro-benchmark binary (`src/bin/perf.rs`) measures events/sec
//! for each macro scenario and serializes a [`Snapshot`] to the repo
//! root. Committed snapshots form the perf trajectory: each PR that
//! touches the hot path appends one, and regressions show up as a drop
//! in `events_per_sec` between consecutive files.
//!
//! The workspace is hermetic (no serde), so this module carries both a
//! hand-rolled JSON emitter and a minimal recursive-descent JSON parser.
//! The parser exists so CI can *validate* an emitted snapshot — parse it
//! back and check every expected bench key is present with sane fields —
//! which makes a broken emitter a tier-1 failure rather than a silently
//! corrupt artifact.

use crate::timing::Measurement;

/// Bench keys every full snapshot must contain. CI validates emitted
/// snapshots against this list; extend it when adding a macro bench.
pub const EXPECTED_BENCHES: &[&str] = &[
    "fig4_sweep",
    "fig5_cluster_w1",
    "fig5_cluster_w2",
    "fig5_cluster_w8",
    "incast",
    "faults",
    "openloop",
    "kv_cluster",
    "farmem",
    "dpa",
];

/// One benchmark's record in the snapshot.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Stable bench key (one of [`EXPECTED_BENCHES`]).
    pub name: String,
    /// Sorted per-iteration wall times [ns].
    pub samples: Vec<u64>,
    /// Fastest iteration [ns].
    pub min_ns: u64,
    /// Mean iteration [ns].
    pub mean_ns: f64,
    /// Median iteration [ns].
    pub p50_ns: u64,
    /// 99th-percentile iteration [ns].
    pub p99_ns: u64,
    /// Simulated events one iteration delivers (deterministic).
    pub events: u64,
    /// Simulated events per wall-clock second (mean iteration).
    pub events_per_sec: f64,
}

impl From<&Measurement> for BenchRecord {
    fn from(m: &Measurement) -> BenchRecord {
        BenchRecord {
            name: m.name.clone(),
            samples: m.samples.clone(),
            min_ns: m.min_ns(),
            mean_ns: m.mean_ns(),
            p50_ns: m.percentile_ns(50.0),
            p99_ns: m.percentile_ns(99.0),
            events: m.events,
            events_per_sec: m.events_per_sec(),
        }
    }
}

/// A full perf snapshot: metadata plus one record per macro bench.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// UTC civil date `YYYY-MM-DD` the snapshot was taken.
    pub date: String,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Per-bench records, in run order.
    pub benches: Vec<BenchRecord>,
}

impl Snapshot {
    /// Builds a snapshot from measurements, stamping today's date and
    /// the current git revision. Fails if any record carries a
    /// non-finite floating-point field.
    pub fn new(measurements: &[Measurement]) -> Result<Snapshot, String> {
        Snapshot::from_records(
            today_utc(),
            git_rev(),
            measurements.iter().map(BenchRecord::from).collect(),
        )
    }

    /// Builds a snapshot from explicit records, rejecting NaN/Infinity
    /// fields up front. (Historically `json_f64` silently rewrote
    /// non-finite values to `0.0` at emit time, so a wedged benchmark
    /// surfaced as a plausible-looking zero in the perf trajectory
    /// instead of an error.)
    pub fn from_records(
        date: String,
        git_rev: String,
        benches: Vec<BenchRecord>,
    ) -> Result<Snapshot, String> {
        for b in &benches {
            for (key, v) in [("mean_ns", b.mean_ns), ("events_per_sec", b.events_per_sec)] {
                if !v.is_finite() {
                    return Err(format!(
                        "bench {:?} field {key:?} = {v} is not finite",
                        b.name
                    ));
                }
            }
        }
        Ok(Snapshot {
            date,
            git_rev,
            benches,
        })
    }

    /// The snapshot's canonical file name, `BENCH_<date>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"date\": {},\n", json_str(&self.date)));
        s.push_str(&format!("  \"git_rev\": {},\n", json_str(&self.git_rev)));
        s.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json_str(&b.name)));
            let samples: Vec<String> = b.samples.iter().map(|n| n.to_string()).collect();
            s.push_str(&format!("      \"samples\": [{}],\n", samples.join(", ")));
            s.push_str(&format!("      \"min_ns\": {},\n", b.min_ns));
            s.push_str(&format!("      \"mean_ns\": {},\n", json_f64(b.mean_ns)));
            s.push_str(&format!("      \"p50_ns\": {},\n", b.p50_ns));
            s.push_str(&format!("      \"p99_ns\": {},\n", b.p99_ns));
            s.push_str(&format!("      \"events\": {},\n", b.events));
            s.push_str(&format!(
                "      \"events_per_sec\": {}\n",
                json_f64(b.events_per_sec)
            ));
            s.push_str(if i + 1 < self.benches.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity;
/// [`Snapshot::from_records`] rejects them at build time, so reaching
/// here with one means a snapshot bypassed validation.
fn json_f64(v: f64) -> String {
    assert!(
        v.is_finite(),
        "non-finite value {v} escaped snapshot validation"
    );
    format!("{v:.3}")
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// UTC civil date from the system clock, `YYYY-MM-DD`.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day). Howard Hinnant's `civil_from_days`
/// algorithm, exact for the proleptic Gregorian calendar.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Short git revision of the working tree, `"unknown"` if git is
/// unavailable (the snapshot stays valid either way).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough to validate emitted snapshots.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document (errors carry a byte offset).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape".to_string())?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // byte boundaries are valid).
                        let rest = &b[*pos..];
                        let text =
                            std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                        let c = text.chars().next().unwrap();
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number at byte {start}"))
        }
    }
}

/// Validates a snapshot document: parses, then checks every name in
/// `expected` appears as a bench record with positive `events` and
/// `events_per_sec` and a consistent sample count. Returns the list of
/// bench names found, in file order.
pub fn validate_snapshot(text: &str, expected: &[&str]) -> Result<Vec<String>, String> {
    let doc = parse_json(text)?;
    for key in ["date", "git_rev"] {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or(format!("missing or non-string field {key:?}"))?;
    }
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field \"benches\"")?;
    let mut names = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bench record missing \"name\"")?
            .to_string();
        let samples = b
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or(format!("bench {name:?} missing \"samples\""))?;
        if samples.is_empty() {
            return Err(format!("bench {name:?} has no samples"));
        }
        for key in [
            "min_ns",
            "mean_ns",
            "p50_ns",
            "p99_ns",
            "events",
            "events_per_sec",
        ] {
            let v = b
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("bench {name:?} missing numeric {key:?}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("bench {name:?} field {key:?} = {v} is not sane"));
            }
        }
        let events = b.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        let eps = b
            .get("events_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if events <= 0.0 || eps <= 0.0 {
            return Err(format!(
                "bench {name:?} reports no throughput (events={events}, events_per_sec={eps})"
            ));
        }
        names.push(name);
    }
    for want in expected {
        if !names.iter().any(|n| n == want) {
            return Err(format!("snapshot is missing expected bench {want:?}"));
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement(name: &str) -> Measurement {
        Measurement {
            name: name.to_string(),
            samples: vec![100, 120, 150],
            events: 5000,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let ms: Vec<Measurement> = EXPECTED_BENCHES
            .iter()
            .map(|n| sample_measurement(n))
            .collect();
        let snap = Snapshot::new(&ms).expect("finite measurements build");
        assert!(snap.file_name().starts_with("BENCH_"));
        assert!(snap.file_name().ends_with(".json"));
        let json = snap.to_json();
        let names = validate_snapshot(&json, EXPECTED_BENCHES).expect("roundtrip validates");
        assert_eq!(names.len(), EXPECTED_BENCHES.len());
        let doc = parse_json(&json).unwrap();
        let b0 = &doc.get("benches").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(b0.get("min_ns").and_then(Json::as_f64), Some(100.0));
        assert_eq!(b0.get("events").and_then(Json::as_f64), Some(5000.0));
    }

    #[test]
    fn validate_rejects_missing_bench() {
        let ms = vec![sample_measurement("fig4_sweep")];
        let json = Snapshot::new(&ms).expect("finite").to_json();
        let err = validate_snapshot(&json, EXPECTED_BENCHES).unwrap_err();
        assert!(err.contains("missing expected bench"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_throughput() {
        let mut m = sample_measurement("fig4_sweep");
        m.events = 0;
        let json = Snapshot::new(&[m]).expect("zero is finite").to_json();
        let err = validate_snapshot(&json, &["fig4_sweep"]).unwrap_err();
        assert!(err.contains("no throughput"), "{err}");
    }

    #[test]
    fn non_finite_records_rejected_at_build_time() {
        let nan = |field: &str| {
            let mut rec = BenchRecord::from(&sample_measurement("fig4_sweep"));
            match field {
                "mean_ns" => rec.mean_ns = f64::NAN,
                _ => rec.events_per_sec = f64::INFINITY,
            }
            Snapshot::from_records("2026-08-07".into(), "deadbee".into(), vec![rec])
        };
        let err = nan("mean_ns").unwrap_err();
        assert!(
            err.contains("mean_ns") && err.contains("not finite"),
            "{err}"
        );
        let err = nan("events_per_sec").unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
        // Finite records still build and round-trip through the emitter.
        let rec = BenchRecord::from(&sample_measurement("fig4_sweep"));
        let snap = Snapshot::from_records("2026-08-07".into(), "deadbee".into(), vec![rec])
            .expect("finite record builds");
        validate_snapshot(&snap.to_json(), &["fig4_sweep"]).expect("roundtrip validates");
    }

    #[test]
    fn parser_handles_basic_json() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn civil_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
