//! `snic-bench` — benchmark harness regenerating every table and figure.
//!
//! Each paper artifact has a binary (`src/bin/fig*.rs`, `table3_*.rs`)
//! that prints the regenerated series as an aligned table and as CSV;
//! `run_all` emits everything. The in-tree [`timing`] benches
//! (`benches/`) cover the simulator primitives, one point of each
//! figure, and the ablations flagged in DESIGN.md §7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use std::fs;
use std::path::Path;
use std::sync::Mutex;

use snic_core::report::Table;

/// Output directory for CSV files.
pub const RESULTS_DIR: &str = "results";

/// CLI options shared by the figure binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Shrink sweeps and horizons (`--quick`).
    pub quick: bool,
    /// Write CSV files under [`RESULTS_DIR`] (`--csv`).
    pub csv: bool,
}

impl Options {
    /// Parses the binary's arguments.
    pub fn from_args() -> Options {
        let mut o = Options::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--csv" => o.csv = true,
                "--help" | "-h" => {
                    eprintln!("options: --quick (small sweep)  --csv (write results/*.csv)");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        o
    }
}

/// Prints tables and optionally writes them as CSV under `results/`.
pub fn emit(prefix: &str, tables: &[Table], opts: Options) {
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.to_text());
        if opts.csv {
            let dir = Path::new(RESULTS_DIR);
            fs::create_dir_all(dir).expect("create results dir");
            let path = dir.join(format!("{prefix}_{i}.csv"));
            fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// A thread-safe collector for tables produced by parallel experiment
/// workers (scoped threads in the figure binaries), preserving a
/// deterministic (name, index) order on drain.
#[derive(Default)]
pub struct TableSink {
    inner: Mutex<Vec<(String, Table)>>,
}

impl TableSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table under an artifact name (callable from any thread).
    pub fn push(&self, name: &str, table: Table) {
        self.inner
            .lock()
            .expect("no worker panics while holding the sink")
            .push((name.to_string(), table));
    }

    /// Drains all tables sorted by (name, insertion order within name).
    pub fn drain_sorted(&self) -> Vec<(String, Table)> {
        let mut v = std::mem::take(
            &mut *self
                .inner
                .lock()
                .expect("no worker panics while holding the sink"),
        );
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = Options::default();
        assert!(!o.quick);
        assert!(!o.csv);
    }

    #[test]
    fn emit_prints_without_csv() {
        let t = Table::new("T", &["a"]);
        emit("test", &[t], Options::default());
    }

    #[test]
    fn table_sink_collects_across_threads() {
        let sink = TableSink::new();
        std::thread::scope(|s| {
            for name in ["b", "a", "c"] {
                let sink = &sink;
                s.spawn(move || sink.push(name, Table::new(name, &["x"])));
            }
        });
        let drained = sink.drain_sorted();
        let names: Vec<&str> = drained.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
