//! `snic-bench` — benchmark harness regenerating every table and figure.
//!
//! Each paper artifact has a binary (`src/bin/fig*.rs`, `table3_*.rs`)
//! that prints the regenerated series as an aligned table and as CSV;
//! `run_all` emits everything. The in-tree [`timing`] benches
//! (`benches/`) cover the simulator primitives, one point of each
//! figure, and the ablations flagged in DESIGN.md §7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod timing;

use std::fs;
use std::path::Path;
use std::sync::Mutex;

use snic_core::report::Table;

/// Output directory for CSV files.
pub const RESULTS_DIR: &str = "results";

/// CLI options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Shrink sweeps and horizons (`--quick`).
    pub quick: bool,
    /// Write CSV files under [`RESULTS_DIR`] (`--csv`).
    pub csv: bool,
    /// Only run jobs whose name starts with this prefix
    /// (`--only <prefix>`; `run_all` only).
    pub only: Option<String>,
    /// Cap concurrent experiment jobs (`--jobs N`; `run_all` only).
    pub jobs: Option<usize>,
}

impl Options {
    /// Parses the binary's arguments.
    pub fn from_args() -> Options {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|bad| {
            eprintln!("{bad}; try --help");
            std::process::exit(2);
        })
    }

    /// Parses an argument list; `Err` carries the offending token.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut o = Options::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--csv" => o.csv = true,
                "--only" => match it.next() {
                    Some(p) => o.only = Some(p),
                    None => return Err("--only needs a job-name prefix".to_string()),
                },
                "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => o.jobs = Some(n),
                    _ => return Err("--jobs needs a positive integer".to_string()),
                },
                other => {
                    if let Some(p) = other.strip_prefix("--only=") {
                        o.only = Some(p.to_string());
                    } else if let Some(n) = other.strip_prefix("--jobs=") {
                        match n.parse::<usize>() {
                            Ok(n) if n > 0 => o.jobs = Some(n),
                            _ => return Err("--jobs needs a positive integer".to_string()),
                        }
                    } else if matches!(other, "--help" | "-h") {
                        eprintln!(
                            "options: --quick (small sweep)  --csv (write results/*.csv)  \
                             --only <prefix> (filter jobs)  --jobs <n> (concurrency cap)"
                        );
                        std::process::exit(0);
                    } else {
                        return Err(format!("unknown option {other}"));
                    }
                }
            }
        }
        Ok(o)
    }
}

/// Prints tables and optionally writes them as CSV under `results/`.
pub fn emit(prefix: &str, tables: &[Table], opts: &Options) {
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.to_text());
        if opts.csv {
            let dir = Path::new(RESULTS_DIR);
            fs::create_dir_all(dir).expect("create results dir");
            let path = dir.join(format!("{prefix}_{i}.csv"));
            fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// A thread-safe collector for tables produced by parallel experiment
/// workers (scoped threads in the figure binaries), preserving a
/// deterministic (name, index) order on drain.
#[derive(Default)]
pub struct TableSink {
    inner: Mutex<Vec<(String, Table)>>,
}

impl TableSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table under an artifact name (callable from any thread).
    pub fn push(&self, name: &str, table: Table) {
        self.inner
            .lock()
            .expect("no worker panics while holding the sink")
            .push((name.to_string(), table));
    }

    /// Drains all tables sorted by (name, insertion order within name).
    pub fn drain_sorted(&self) -> Vec<(String, Table)> {
        let mut v = std::mem::take(
            &mut *self
                .inner
                .lock()
                .expect("no worker panics while holding the sink"),
        );
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = Options::default();
        assert!(!o.quick);
        assert!(!o.csv);
        assert!(o.only.is_none());
        assert!(o.jobs.is_none());
    }

    #[test]
    fn parse_only_and_jobs() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = Options::parse(args(&["--quick", "--only", "14", "--jobs", "2"])).unwrap();
        assert!(o.quick);
        assert_eq!(o.only.as_deref(), Some("14"));
        assert_eq!(o.jobs, Some(2));
        // `=` forms.
        let o = Options::parse(args(&["--only=04_fig5", "--jobs=8"])).unwrap();
        assert_eq!(o.only.as_deref(), Some("04_fig5"));
        assert_eq!(o.jobs, Some(8));
        // Rejections.
        assert!(Options::parse(args(&["--only"])).is_err());
        assert!(Options::parse(args(&["--jobs", "0"])).is_err());
        assert!(Options::parse(args(&["--jobs", "many"])).is_err());
        assert!(Options::parse(args(&["--bogus"])).is_err());
    }

    #[test]
    fn emit_prints_without_csv() {
        let t = Table::new("T", &["a"]);
        emit("test", &[t], &Options::default());
    }

    #[test]
    fn table_sink_collects_across_threads() {
        let sink = TableSink::new();
        std::thread::scope(|s| {
            for name in ["b", "a", "c"] {
                let sink = &sink;
                s.spawn(move || sink.push(name, Table::new(name, &["x"])));
            }
        });
        let drained = sink.drain_sorted();
        let names: Vec<&str> = drained.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
