//! Minimal in-tree wall-clock benchmark harness.
//!
//! Replaces the external benchmark framework with ~100 dependency-free
//! lines: each benchmark runs a warmup phase, then N timed iterations,
//! and reports min/mean/p50/p99 per iteration. Optimization barriers use
//! [`std::hint::black_box`] (re-exported as [`black_box`]).
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLES=<n>` — timed iterations per benchmark (default set
//!   per bench binary);
//! * `BENCH_WARMUP=<n>`  — warmup iterations (default 3).
//!
//! Unlike the simulators, which are bit-for-bit deterministic, wall
//! times are inherently noisy; the harness reports distribution summary
//! statistics and leaves regression judgement to the reader.

use std::time::Instant;

pub use std::hint::black_box;

/// A benchmark runner: warmup + sample count configuration plus a
/// uniform report format.
#[derive(Debug, Clone, Copy)]
pub struct Bench {
    samples: usize,
    warmup: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?} is not a positive integer")),
        Err(_) => default,
    }
}

impl Bench {
    /// A runner taking `default_samples` timed iterations per benchmark
    /// (overridable with `BENCH_SAMPLES`) after `BENCH_WARMUP` (default
    /// 3) warmup iterations.
    pub fn from_env(default_samples: usize) -> Bench {
        Bench {
            samples: env_usize("BENCH_SAMPLES", default_samples).max(1),
            warmup: env_usize("BENCH_WARMUP", 3),
        }
    }

    /// Times `f`, printing a one-line summary keyed by `name`.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// compiler cannot elide the measured work.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        self.run_batched(name, || (), |()| f());
    }

    /// Like [`Bench::run`] but with a per-iteration `setup` whose cost
    /// is excluded from the measurement (the former `iter_batched`).
    pub fn run_batched<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.warmup {
            black_box(routine(setup()));
        }
        let mut ns: Vec<u64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            ns.push(t0.elapsed().as_nanos() as u64);
        }
        ns.sort_unstable();
        let mean = ns.iter().sum::<u64>() as f64 / ns.len() as f64;
        let pct =
            |q: f64| ns[((q / 100.0 * (ns.len() - 1) as f64).round() as usize).min(ns.len() - 1)];
        println!(
            "{name:<44} min {:>10}  mean {:>10}  p50 {:>10}  p99 {:>10}  ({} samples)",
            fmt_ns(ns[0]),
            fmt_ns(mean as u64),
            fmt_ns(pct(50.0)),
            fmt_ns(pct(99.0)),
            ns.len()
        );
    }
}

/// Formats a nanosecond duration with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let b = Bench {
            samples: 5,
            warmup: 1,
        };
        let mut calls = 0u32;
        b.run("test/trivial", || {
            calls += 1;
            calls
        });
        // 1 warmup + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn batched_setup_runs_per_iteration() {
        let b = Bench {
            samples: 4,
            warmup: 2,
        };
        let mut setups = 0u32;
        b.run_batched(
            "test/batched",
            || {
                setups += 1;
            },
            |()| 0u8,
        );
        assert_eq!(setups, 6);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
