//! Minimal in-tree wall-clock benchmark harness.
//!
//! Replaces the external benchmark framework with a few dependency-free
//! pages: each benchmark runs a warmup phase, then N timed iterations,
//! and reports min/mean/p50/p99 per iteration. Optimization barriers use
//! [`std::hint::black_box`] (re-exported as [`black_box`]).
//!
//! Environment knobs (validated uniformly at harness construction — a
//! bad value fails immediately with the offending name and value, never
//! mid-run):
//!
//! * `BENCH_SAMPLES=<n>` — timed iterations per benchmark (default set
//!   per bench binary); must be an unsigned integer >= 1;
//! * `BENCH_WARMUP=<n>`  — warmup iterations (default 3); must be an
//!   unsigned integer (0 disables warmup and is valid).
//!
//! Unlike the simulators, which are bit-for-bit deterministic, wall
//! times are inherently noisy; the harness reports distribution summary
//! statistics and leaves regression judgement to the reader. The
//! [`Bench::measure`] entry point additionally captures a per-iteration
//! *simulated event count* so macro benchmarks can report events/sec —
//! the quantity the `BENCH_*.json` perf trajectory tracks.

use std::time::Instant;

pub use std::hint::black_box;

/// A benchmark runner: warmup + sample count configuration plus a
/// uniform report format.
#[derive(Debug, Clone, Copy)]
pub struct Bench {
    samples: usize,
    warmup: usize,
}

/// Parses one environment knob value. Pure so the validation rules are
/// unit-testable without touching the process environment: the value
/// must be an unsigned integer and at least `min` (`min = 1` for sample
/// counts, `min = 0` for warmup counts).
fn parse_knob(name: &str, raw: &str, min: usize) -> Result<usize, String> {
    let v: usize = raw
        .trim()
        .parse()
        .map_err(|_| format!("{name}={raw:?} is not an unsigned integer"))?;
    if v < min {
        return Err(format!(
            "{name}={v} is out of range: must be at least {min}"
        ));
    }
    Ok(v)
}

/// Reads an environment knob, failing fast with a uniform, clear error
/// for *both* malformed and out-of-range values (historically
/// `BENCH_SAMPLES=0` was silently clamped to 1 while `BENCH_SAMPLES=x`
/// panicked mid-run with a misleading message).
fn env_knob(name: &str, default: usize, min: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => match parse_knob(name, &v, min) {
            Ok(v) => v,
            Err(msg) => panic!("{msg}"),
        },
        Err(_) => default,
    }
}

/// One benchmark's timed samples plus its deterministic event count.
///
/// `samples` holds per-iteration wall times in nanoseconds, sorted
/// ascending. `events` is the number of simulated events one iteration
/// delivers — identical across iterations because the simulations are
/// bit-for-bit deterministic.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (stable key in `BENCH_*.json`).
    pub name: String,
    /// Sorted per-iteration wall times [ns].
    pub samples: Vec<u64>,
    /// Simulated events delivered per iteration.
    pub events: u64,
}

impl Measurement {
    /// Fastest iteration [ns].
    pub fn min_ns(&self) -> u64 {
        self.samples.first().copied().unwrap_or(0)
    }

    /// Mean iteration time [ns].
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Percentile (nearest-rank over the sorted samples).
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples[nearest_rank_index(q, self.samples.len())]
    }

    /// Simulated events per wall-clock second, over the mean iteration.
    pub fn events_per_sec(&self) -> f64 {
        let mean = self.mean_ns();
        if mean <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (mean / 1e9)
    }

    /// The one-line human summary the bench binaries print.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} min {:>10}  mean {:>10}  p50 {:>10}  p99 {:>10}  {:>8.2} Mev/s  ({} samples)",
            self.name,
            fmt_ns(self.min_ns()),
            fmt_ns(self.mean_ns() as u64),
            fmt_ns(self.percentile_ns(50.0)),
            fmt_ns(self.percentile_ns(99.0)),
            self.events_per_sec() / 1e6,
            self.samples.len()
        )
    }
}

impl Bench {
    /// A runner taking `default_samples` timed iterations per benchmark
    /// (overridable with `BENCH_SAMPLES`, which must be >= 1) after
    /// `BENCH_WARMUP` (default 3, 0 allowed) warmup iterations.
    pub fn from_env(default_samples: usize) -> Bench {
        Bench {
            samples: env_knob("BENCH_SAMPLES", default_samples.max(1), 1),
            warmup: env_knob("BENCH_WARMUP", 3, 0),
        }
    }

    /// Configured timed-iteration count.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Times `f`, printing a one-line summary keyed by `name`.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// compiler cannot elide the measured work.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        self.run_batched(name, || (), |()| f());
    }

    /// Like [`Bench::run`] but with a per-iteration `setup` whose cost
    /// is excluded from the measurement (the former `iter_batched`).
    pub fn run_batched<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.warmup {
            black_box(routine(setup()));
        }
        let mut ns: Vec<u64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            ns.push(t0.elapsed().as_nanos() as u64);
        }
        ns.sort_unstable();
        let mean = ns.iter().sum::<u64>() as f64 / ns.len() as f64;
        let pct = |q: f64| ns[nearest_rank_index(q, ns.len())];
        println!(
            "{name:<44} min {:>10}  mean {:>10}  p50 {:>10}  p99 {:>10}  ({} samples)",
            fmt_ns(ns[0]),
            fmt_ns(mean as u64),
            fmt_ns(pct(50.0)),
            fmt_ns(pct(99.0)),
            ns.len()
        );
    }

    /// Times `f` — which must return the number of simulated events one
    /// iteration delivered — and returns the full [`Measurement`] so the
    /// caller can serialize it (`BENCH_*.json`) as well as print it.
    pub fn measure(&self, name: &str, mut f: impl FnMut() -> u64) -> Measurement {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut ns: Vec<u64> = Vec::with_capacity(self.samples);
        let mut events = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            events = black_box(f());
            ns.push(t0.elapsed().as_nanos() as u64);
        }
        ns.sort_unstable();
        Measurement {
            name: name.to_string(),
            samples: ns,
            events,
        }
    }
}

/// Index of the nearest-rank percentile `q` in a sorted sample of size
/// `n >= 1`: rank `ceil(q/100 * n)` clamped to `[1, n]`, zero-based.
///
/// The previous formula rounded `q/100 * (n-1)`, which is neither
/// nearest-rank nor interpolation: with two samples it returned the
/// *maximum* as the median (`0.5 * 1` rounds to 1, and `round()` on the
/// half-way case rounds away from zero).
fn nearest_rank_index(q: f64, n: usize) -> usize {
    let rank = (q / 100.0 * n as f64).ceil().max(1.0) as usize;
    rank.min(n) - 1
}

/// Formats a nanosecond duration with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let b = Bench {
            samples: 5,
            warmup: 1,
        };
        let mut calls = 0u32;
        b.run("test/trivial", || {
            calls += 1;
            calls
        });
        // 1 warmup + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn batched_setup_runs_per_iteration() {
        let b = Bench {
            samples: 4,
            warmup: 2,
        };
        let mut setups = 0u32;
        b.run_batched(
            "test/batched",
            || {
                setups += 1;
            },
            |()| 0u8,
        );
        assert_eq!(setups, 6);
    }

    #[test]
    fn measure_reports_events() {
        let b = Bench {
            samples: 4,
            warmup: 1,
        };
        let m = b.measure("test/measure", || 1000);
        assert_eq!(m.samples.len(), 4);
        assert_eq!(m.events, 1000);
        assert!(m.events_per_sec() > 0.0);
        assert!(m.min_ns() <= m.percentile_ns(50.0));
        assert!(m.percentile_ns(50.0) <= m.percentile_ns(99.0));
        assert!(m.summary_line().contains("test/measure"));
    }

    #[test]
    fn empty_measurement_is_safe() {
        let m = Measurement {
            name: "empty".into(),
            samples: Vec::new(),
            events: 0,
        };
        assert_eq!(m.min_ns(), 0);
        assert_eq!(m.mean_ns(), 0.0);
        assert_eq!(m.percentile_ns(99.0), 0);
        assert_eq!(m.events_per_sec(), 0.0);
    }

    #[test]
    fn knob_validation_is_uniform() {
        // Samples: must be >= 1 — zero is rejected with a clear message,
        // never silently clamped.
        assert_eq!(parse_knob("BENCH_SAMPLES", "5", 1), Ok(5));
        assert_eq!(parse_knob("BENCH_SAMPLES", " 7 ", 1), Ok(7));
        let e = parse_knob("BENCH_SAMPLES", "0", 1).unwrap_err();
        assert!(
            e.contains("BENCH_SAMPLES=0") && e.contains("at least 1"),
            "{e}"
        );
        let e = parse_knob("BENCH_SAMPLES", "five", 1).unwrap_err();
        assert!(
            e.contains("BENCH_SAMPLES=\"five\"") && e.contains("not an unsigned integer"),
            "{e}"
        );
        // Warmup: 0 is a valid request (skip warmup), negatives and junk
        // fail with the same message shape as the samples knob.
        assert_eq!(parse_knob("BENCH_WARMUP", "0", 0), Ok(0));
        let e = parse_knob("BENCH_WARMUP", "-3", 0).unwrap_err();
        assert!(e.contains("BENCH_WARMUP=\"-3\""), "{e}");
        let e = parse_knob("BENCH_WARMUP", "1.5", 0).unwrap_err();
        assert!(e.contains("not an unsigned integer"), "{e}");
    }

    fn meas(samples: &[u64]) -> Measurement {
        Measurement {
            name: "pct".into(),
            samples: samples.to_vec(),
            events: 1,
        }
    }

    #[test]
    fn percentiles_of_one_sample() {
        let m = meas(&[42]);
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(m.percentile_ns(q), 42, "q={q}");
        }
    }

    #[test]
    fn percentiles_of_two_samples() {
        let m = meas(&[10, 20]);
        assert_eq!(m.percentile_ns(0.0), 10);
        // Nearest-rank median of two samples is the *lower* one — the
        // old round() formula returned the maximum here.
        assert_eq!(m.percentile_ns(50.0), 10);
        assert_eq!(m.percentile_ns(99.0), 20);
        assert_eq!(m.percentile_ns(100.0), 20);
    }

    #[test]
    fn percentiles_of_three_samples() {
        let m = meas(&[10, 20, 30]);
        assert_eq!(m.percentile_ns(0.0), 10);
        assert_eq!(m.percentile_ns(50.0), 20, "true median of 3");
        assert_eq!(m.percentile_ns(99.0), 30);
        assert_eq!(m.percentile_ns(100.0), 30);
        // Rank boundary: q covering exactly one sample stays on it.
        assert_eq!(m.percentile_ns(100.0 / 3.0), 10);
        assert_eq!(m.percentile_ns(34.0), 20);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
