//! Regenerates the §5 Discussion what-if tables (on-path vs off-path,
//! Bluefield-3, CXL).

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::discussion::run(opts.quick);
    snic_bench::emit("fig_discussion", &tables, &opts);
}
