//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::motivation`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::motivation::run(opts.quick);
    snic_bench::emit("fig_motivation", &tables, &opts);
}
