//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::budget`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::budget::run(opts.quick);
    snic_bench::emit("fig_concurrent_budget", &tables, &opts);
}
