//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::table3_packets`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::table3_packets::run(opts.quick);
    snic_bench::emit("table3_packets", &tables, &opts);
}
