//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig10_doorbell`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig10_doorbell::run(opts.quick);
    snic_bench::emit("fig10_doorbell", &tables, &opts);
}
