//! `perf` — macro benchmarks tracking simulator events/sec.
//!
//! Runs the perf-trajectory suite (single-machine Fig-4 sweep, the
//! cluster Fig-5 combination at 1/2/8 workers, the incast fan-in, a
//! faulty cluster run, an open-loop arrival-driven run, the KV
//! service under the online advisor, the far-memory tier over the
//! remote SoC pool, and the KV service on a BF-3 rack serving from
//! the DPA plane), printing
//! events/sec per scenario and emitting a
//! machine-readable `BENCH_<date>.json` snapshot in the current
//! directory. Committed snapshots in the repo root form the trajectory
//! that regression-gates hot-path changes.
//!
//! ```text
//! cargo run --release -p snic-bench --bin perf            # full suite + snapshot
//! cargo run --release -p snic-bench --bin perf -- --only fig5
//! cargo run --release -p snic-bench --bin perf -- --out /tmp/bench.json
//! cargo run --release -p snic-bench --bin perf -- --check BENCH_2026-08-07.json
//! BENCH_SAMPLES=3 cargo run --release -p snic-bench --bin perf   # CI smoke
//! ```
//!
//! `--check <file>` parses an existing snapshot and verifies every
//! expected bench key is present with sane throughput fields (nonzero
//! exit otherwise) — the CI smoke uses it to make a broken emitter a
//! tier-1 failure. `--only <prefix>` runs a subset (the emitted partial
//! snapshot then deliberately fails `--check`).

use nicsim::{PathKind, Verb};
use simnet::arrivals::{DropPolicy, OpenLoopSpec};
use simnet::faults::{DegradedWindow, FaultSpec};
use simnet::time::Nanos;
use snic_bench::report::{validate_snapshot, Snapshot, EXPECTED_BENCHES};
use snic_bench::timing::{Bench, Measurement};
use snic_cluster::{
    advisor_policy, run_cluster, ClusterScenario, ClusterStream, KvPlacement, KvStreamSpec,
};
use snic_core::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use snic_farmem::{FmPlacement, FmStreamSpec};
use snic_kvstore::{KeyDist, Mix};
use topology::MachineSpec;

/// Default timed iterations per macro bench (override: `BENCH_SAMPLES`).
const DEFAULT_SAMPLES: usize = 5;

/// Single-machine Fig-4-style sweep: every path × {READ, WRITE} at a
/// small and a large payload. Returns total events delivered.
fn fig4_sweep() -> u64 {
    let sc = Scenario {
        warmup: Nanos::from_micros(100),
        duration: Nanos::from_micros(600),
        seed: 7,
        ..Scenario::default()
    };
    let mut events = 0u64;
    for verb in [Verb::Read, Verb::Write] {
        for payload in [64u64, 4096] {
            for path in PathKind::ALL {
                let s = Scenario {
                    server: if path == PathKind::Rnic1 {
                        ServerKind::Rnic
                    } else {
                        ServerKind::Bluefield
                    },
                    ..sc.clone()
                };
                let n = if path.is_remote() { 11 } else { 1 };
                let r = run_scenario(&s, &[StreamSpec::new(path, verb, payload, n)]);
                events += r.events;
            }
        }
    }
    events
}

/// Cluster scenario shared by the fig5/incast/faults macro benches: the
/// quick horizon with six client machines (the determinism tests'
/// configuration, so the benched path is exactly the gated one).
fn bench_cluster(workers: usize) -> ClusterScenario {
    let mut sc = ClusterScenario::quick().with_workers(workers).with_seed(17);
    sc.cluster.clients.truncate(6);
    sc
}

/// Fig-5 flow combination (READ+WRITE on path 1, 4 KB) at `workers`
/// worker threads. Returns events delivered across all shards.
fn fig5_cluster(workers: usize) -> u64 {
    let sc = bench_cluster(workers);
    let a = ClusterStream::new(PathKind::Snic1, Verb::Read, 4 << 10, vec![0, 1, 2])
        .with_window(16)
        .with_threads(12);
    let b = ClusterStream::new(PathKind::Snic1, Verb::Write, 4 << 10, vec![3, 4, 5])
        .with_window(16)
        .with_threads(12);
    run_cluster(&sc, &[a, b]).events
}

/// Incast fan-in: six clients write 4 KB to one responder.
fn incast() -> u64 {
    let sc = bench_cluster(2);
    let stream = ClusterStream::new(PathKind::Snic1, Verb::Write, 4 << 10, (0..6).collect());
    run_cluster(&sc, &[stream]).events
}

/// The active-fault cluster run (wire loss + PCIe corruption + a
/// degradation window), exercising retransmission machinery.
fn faults() -> u64 {
    let fault_spec = FaultSpec::none()
        .with_seed(99)
        .with_wire_loss(0.005)
        .with_pcie_corrupt(0.01)
        .with_pcie_window(DegradedWindow {
            from: Nanos::from_micros(200),
            to: Nanos::from_micros(400),
            slowdown: 4.0,
            extra_latency: Nanos::new(200),
        });
    let sc = bench_cluster(2).with_faults(fault_spec);
    let streams = vec![
        ClusterStream::new(PathKind::Snic1, Verb::Write, 4096, vec![0, 1, 2]),
        ClusterStream::new(PathKind::Snic2, Verb::Read, 256, vec![3, 4, 5]),
        ClusterStream::new(PathKind::Snic3H2S, Verb::Write, 1024, vec![]),
    ];
    run_cluster(&sc, &streams).events
}

/// Open-loop cluster run: two arrival-driven streams (one drop-tail,
/// one drop-deadline) on the shared bench cluster, exercising the
/// arrival chains, admission queues and NACK machinery.
fn openloop() -> u64 {
    let sc = bench_cluster(2);
    let a = ClusterStream::new(PathKind::Snic1, Verb::Write, 512, vec![0, 1, 2])
        .open_loop(OpenLoopSpec::poisson(6.0e6));
    let b = ClusterStream::new(PathKind::Snic2, Verb::Read, 256, vec![3, 4, 5]).open_loop(
        OpenLoopSpec::poisson(2.0e6).with_policy(DropPolicy::DropDeadline(Nanos::from_micros(20))),
    );
    run_cluster(&sc, &[a, b]).events
}

/// The KV service under the online advisor: YCSB-B over an open-loop
/// Poisson stream hot enough that the advisor re-places the index,
/// exercising the KV request routing, probe chains, the per-window
/// observation plumbing and the epoch decision chain.
fn kv_cluster() -> u64 {
    let sc = bench_cluster(2);
    let spec = KvStreamSpec::new(
        Mix::B,
        KeyDist::Zipf(0.99),
        KvPlacement::Online(advisor_policy),
    );
    let stream =
        ClusterStream::kv_service(spec, (0..6).collect()).open_loop(OpenLoopSpec::poisson(10.0e6));
    run_cluster(&sc, &[stream]).events
}

/// The far-memory tier over the remote pool: an open-loop page-access
/// stream whose misses promote pages over path ② and whose demotions
/// write back in the background, exercising the residency table, the
/// SoC page caches and the FmGet/FmPut/FmResp plumbing.
fn farmem() -> u64 {
    let sc = bench_cluster(2);
    let stream =
        ClusterStream::fm_service(FmStreamSpec::new(FmPlacement::RemoteSoc), (0..6).collect())
            .open_loop(OpenLoopSpec::poisson(2.0e6));
    run_cluster(&sc, &[stream]).events
}

/// The BF-3 DPA plane: the KV service on a rack whose servers carry
/// the DPA, driven hard enough that the online advisor moves a
/// scratch-resident index onto the NIC cores — exercising the
/// kick/serve/spill machinery and the dpa_* conservation counters.
fn dpa() -> u64 {
    let mut sc = bench_cluster(2);
    let n = sc.cluster.servers.len();
    sc.cluster.servers = vec![MachineSpec::srv_with_bluefield3_dpa(); n];
    let spec = KvStreamSpec::new(
        Mix::C,
        KeyDist::Uniform,
        KvPlacement::Online(advisor_policy),
    )
    .with_keys(500)
    .with_value_size(64);
    let stream =
        ClusterStream::kv_service(spec, (0..6).collect()).open_loop(OpenLoopSpec::poisson(12.0e6));
    run_cluster(&sc, &[stream]).events
}

fn usage() -> ! {
    eprintln!(
        "perf: macro benchmarks tracking simulator events/sec\n\
         options: --only <prefix> (run a subset)  --out <file> (snapshot path)\n\
         \x20        --check <file> (validate an existing snapshot and exit)\n\
         env: BENCH_SAMPLES (default {DEFAULT_SAMPLES}), BENCH_WARMUP (default 3)"
    );
    std::process::exit(2);
}

fn main() {
    let mut only: Option<String> = None;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--only" => only = Some(it.next().unwrap_or_else(|| usage())),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--check" => check = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf --check: cannot read {path}: {e}");
            std::process::exit(1);
        });
        match validate_snapshot(&text, EXPECTED_BENCHES) {
            Ok(names) => {
                println!("{path}: valid snapshot with {} benches", names.len());
                return;
            }
            Err(e) => {
                eprintln!("perf --check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    type BenchFn = fn() -> u64;
    let bench = Bench::from_env(DEFAULT_SAMPLES);
    let suite: &[(&str, BenchFn)] = &[
        ("fig4_sweep", fig4_sweep),
        ("fig5_cluster_w1", || fig5_cluster(1)),
        ("fig5_cluster_w2", || fig5_cluster(2)),
        ("fig5_cluster_w8", || fig5_cluster(8)),
        ("incast", incast),
        ("faults", faults),
        ("openloop", openloop),
        ("kv_cluster", kv_cluster),
        ("farmem", farmem),
        ("dpa", dpa),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    for (name, f) in suite {
        if let Some(p) = &only {
            if !name.starts_with(p.as_str()) {
                continue;
            }
        }
        let m = bench.measure(name, f);
        println!("{}", m.summary_line());
        measurements.push(m);
    }
    if measurements.is_empty() {
        eprintln!("perf: no bench matches --only filter");
        std::process::exit(1);
    }

    let snap = Snapshot::new(&measurements).unwrap_or_else(|e| {
        eprintln!("perf: refusing to emit snapshot: {e}");
        std::process::exit(1);
    });
    let path = out.unwrap_or_else(|| snap.file_name());
    std::fs::write(&path, snap.to_json()).unwrap_or_else(|e| {
        eprintln!("perf: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path} (git {})", snap.git_rev);
}
