//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig9_path3`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig9_path3::run(opts.quick);
    snic_bench::emit("fig9_path3", &tables, &opts);
}
