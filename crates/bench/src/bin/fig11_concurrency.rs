//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig11_concurrency`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig11_concurrency::run(opts.quick);
    snic_bench::emit("fig11_concurrency", &tables, &opts);
}
