//! Regenerates the Figure 1 key-value store comparison.

fn main() {
    let opts = snic_bench::Options::from_args();
    let table = snic_core::experiments::kv_tables::fig1_table(opts.quick);
    snic_bench::emit("fig1_kvstore", &[table], &opts);
}
