//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig7_skew`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig7_skew::run(opts.quick);
    snic_bench::emit("fig7_skew", &tables, &opts);
}
