//! Regenerates every table and figure in one run.
//!
//! Artifacts are computed on parallel worker threads (each experiment is
//! an independent deterministic simulation) and emitted in a fixed order
//! regardless of completion order. `--only <prefix>` restricts the run
//! to jobs whose name starts with the prefix (`--only 14`,
//! `--only fig5` — the numeric prefix is optional); `--jobs N` caps the
//! worker threads (default: one per job).

use std::sync::atomic::{AtomicUsize, Ordering};

use snic_bench::TableSink;
use snic_core::report::Table;

fn main() {
    let opts = snic_bench::Options::from_args();
    use snic_core::experiments as e;
    type Job = (&'static str, fn(bool) -> Vec<Table>);
    let jobs: Vec<Job> = vec![
        ("00_fig_motivation", e::motivation::run),
        ("01_fig1_kvstore", |q| vec![e::kv_tables::fig1_table(q)]),
        ("02_fig3_breakdown", e::fig3_breakdown::run),
        ("02b_breakdown_measured", e::fig3_breakdown::run_measured),
        ("03_fig4_lat_tput", e::fig4_lat_tput::run),
        ("04_fig5_flows", e::fig5_flows::run),
        ("05_fig7_skew", e::fig7_skew::run),
        ("06_fig8_large_read", e::fig8_large_read::run),
        ("07_fig9_path3", e::fig9_path3::run),
        ("08_fig10_doorbell", e::fig10_doorbell::run),
        ("09_fig11_concurrency", e::fig11_concurrency::run),
        ("10_table3_packets", e::table3_packets::run),
        ("11_fig_concurrent_budget", e::budget::run),
        ("12_fig_discussion", e::discussion::run),
        ("13_fig5_cluster", e::fig5_cluster::run),
        ("14_incast", e::incast::run),
        ("15_faults", e::faults::run),
        ("16_openloop", e::openloop::run),
        ("17_kv_cluster", e::kv_cluster::run),
        ("18_farmem", e::farmem::run),
        ("19_bf3_dpa", e::bf3_dpa::run),
    ];
    let jobs: Vec<Job> = match &opts.only {
        Some(prefix) => {
            let selected: Vec<Job> = jobs
                .into_iter()
                .filter(|(name, _)| {
                    // Match against the full name or the part after the
                    // ordering prefix, so `--only fig5` works too.
                    let clean = name.split_once('_').map_or(*name, |(_, rest)| rest);
                    name.starts_with(prefix.as_str()) || clean.starts_with(prefix.as_str())
                })
                .collect();
            if selected.is_empty() {
                eprintln!("--only {prefix}: no job matches");
                std::process::exit(2);
            }
            selected
        }
        None => jobs,
    };

    // Work queue: at most `--jobs N` experiments in flight (default: all
    // at once, as before).
    let workers = opts.jobs.unwrap_or(jobs.len()).min(jobs.len()).max(1);
    let next = AtomicUsize::new(0);
    let sink = TableSink::new();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (next, sink, jobs) = (&next, &sink, &jobs);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((name, run)) = jobs.get(i) else {
                    break;
                };
                for t in run(opts.quick) {
                    sink.push(name, t);
                }
            });
        }
    });

    // Emit grouped per artifact, in the fixed numbered order; strip the
    // ordering prefix from the CSV file names. Group in one pass and move
    // the tables out rather than re-scanning (and cloning) the full
    // drained list once per job.
    let mut by_name: std::collections::HashMap<String, Vec<Table>> =
        std::collections::HashMap::new();
    for (name, table) in sink.drain_sorted() {
        by_name.entry(name).or_default().push(table);
    }
    for (name, _) in &jobs {
        let tables = by_name.remove(*name).unwrap_or_default();
        let clean = name.split_once('_').map_or(*name, |(_, rest)| rest);
        snic_bench::emit(clean, &tables, &opts);
    }
}
