//! Regenerates the Figure 3 execution-flow latency breakdown.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig3_breakdown::run(opts.quick);
    snic_bench::emit("fig3_breakdown", &tables, &opts);
}
