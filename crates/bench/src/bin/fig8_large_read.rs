//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig8_large_read`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig8_large_read::run(opts.quick);
    snic_bench::emit("fig8_large_read", &tables, &opts);
}
