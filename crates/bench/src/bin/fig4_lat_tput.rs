//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig4_lat_tput`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig4_lat_tput::run(opts.quick);
    snic_bench::emit("fig4_lat_tput", &tables, &opts);
}
