//! Regenerates the paper artifact implemented by
//! `snic_core::experiments::fig5_flows`.

fn main() {
    let opts = snic_bench::Options::from_args();
    let tables = snic_core::experiments::fig5_flows::run(opts.quick);
    snic_bench::emit("fig5_flows", &tables, &opts);
}
