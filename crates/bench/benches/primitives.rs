//! Microbenchmarks of the simulator substrates: event engine, DRAM and
//! LLC models, statistics, and the KV hash index.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memsys::{MemOp, MemSystem};
use simnet::engine::{Engine, Step};
use simnet::rng::SimRng;
use simnet::stats::Histogram;
use simnet::time::Nanos;
use snic_kvstore::index::HashIndex;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            for i in 0..10_000u32 {
                eng.schedule(Nanos::new((i as u64 * 37) % 5000), i).unwrap();
            }
            let mut n = 0;
            eng.run(|_, _, _| {
                n += 1;
                Step::Continue
            });
            n
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("memsys/soc_random_64b_x1k", |b| {
        b.iter_batched(
            || (MemSystem::soc_like(), SimRng::seed(1)),
            |(mut mem, mut rng)| {
                let mut done = Nanos::ZERO;
                for _ in 0..1000 {
                    let a = rng.addr_in_range(0, 1 << 20, 64);
                    done = done.max(mem.dma_access(Nanos::ZERO, a, 64, MemOp::Write));
                }
                done
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("memsys/host_stream_1mb", |b| {
        b.iter_batched(
            MemSystem::host_like,
            |mut mem| mem.dma_access(Nanos::ZERO, 0, 1 << 20, MemOp::Read),
            BatchSize::SmallInput,
        )
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/histogram_record_10k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..10_000u64 {
                h.record(Nanos::new(1 + (i * 7919) % 100_000));
            }
            h.percentile(99.0)
        })
    });
}

fn bench_index(c: &mut Criterion) {
    let mut idx = HashIndex::new(16 << 10, 0);
    for k in 0..40_000u64 {
        idx.insert(k, k * 64, 64).unwrap();
    }
    c.bench_function("kvstore/index_lookup", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 9973) % 40_000;
            idx.lookup(k).unwrap().probes
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_dram, bench_stats, bench_index
}
criterion_main!(benches);
