//! Microbenchmarks of the simulator substrates: event engine, DRAM and
//! LLC models, statistics, and the KV hash index.
//!
//! Runs on the in-tree harness (`snic_bench::timing`); tune with
//! `BENCH_SAMPLES` / `BENCH_WARMUP`.

use memsys::{MemOp, MemSystem};
use simnet::engine::{BaselineEngine, Engine, Step};
use simnet::rng::SimRng;
use simnet::stats::Histogram;
use simnet::time::Nanos;
use snic_bench::timing::Bench;
use snic_kvstore::index::HashIndex;

/// The same series on both engines, so the wheel/heap delta is visible
/// in one run. `dense` is a burst drain; `shardlike` mimics a cluster
/// shard: a pool of far-out timeouts parked while the hot path pops one
/// near-term event at a time, each pop rescheduling a successor.
macro_rules! engine_series {
    ($b:expr, $tag:literal, $eng:ty) => {
        $b.run(concat!("engine/", $tag, "/dense_10k"), || {
            let mut eng: $eng = <$eng>::new();
            for i in 0..10_000u32 {
                eng.schedule(Nanos::new((i as u64 * 37) % 5000), i).unwrap();
            }
            let mut n = 0;
            eng.run(|_, _, _| {
                n += 1;
                Step::Continue
            });
            n
        });
        $b.run(concat!("engine/", $tag, "/shardlike_10k"), || {
            let mut eng: $eng = <$eng>::new();
            for i in 0..200u32 {
                eng.schedule(Nanos::new(100_000 + i as u64), i).unwrap();
            }
            eng.schedule(Nanos::new(1), 999).unwrap();
            let mut n = 0u64;
            while n < 10_000 {
                let (now, _) = eng.pop().unwrap();
                let _ = eng.peek_time();
                eng.schedule(now + Nanos::new(450), 999).unwrap();
                if n % 16 == 0 {
                    eng.schedule(now + Nanos::new(100_000), 7).unwrap();
                }
                n += 1;
            }
            n
        });
    };
}

fn bench_engine(b: &Bench) {
    engine_series!(b, "wheel", Engine<u32>);
    engine_series!(b, "heap", BaselineEngine<u32>);
}

fn bench_dram(b: &Bench) {
    b.run_batched(
        "memsys/soc_random_64b_x1k",
        || (MemSystem::soc_like(), SimRng::seed(1)),
        |(mut mem, mut rng)| {
            let mut done = Nanos::ZERO;
            for _ in 0..1000 {
                let a = rng.addr_in_range(0, 1 << 20, 64);
                done = done.max(mem.dma_access(Nanos::ZERO, a, 64, MemOp::Write));
            }
            done
        },
    );
    b.run_batched("memsys/host_stream_1mb", MemSystem::host_like, |mut mem| {
        mem.dma_access(Nanos::ZERO, 0, 1 << 20, MemOp::Read)
    });
}

fn bench_stats(b: &Bench) {
    b.run("stats/histogram_record_10k", || {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(Nanos::new(1 + (i * 7919) % 100_000));
        }
        h.percentile(99.0)
    });
}

fn bench_index(b: &Bench) {
    let mut idx = HashIndex::new(16 << 10, 0);
    for k in 0..40_000u64 {
        idx.insert(k, k * 64, 64).unwrap();
    }
    let mut k = 0u64;
    b.run("kvstore/index_lookup", || {
        k = (k + 9973) % 40_000;
        idx.lookup(k).unwrap().probes
    });
}

fn main() {
    let b = Bench::from_env(20);
    bench_engine(&b);
    bench_dram(&b);
    bench_stats(&b);
    bench_index(&b);
}
