//! Ablation benches for the design choices flagged in DESIGN.md §7.
//!
//! Each ablation varies one architectural parameter of the model and
//! measures the figure metric it drives, so `cargo bench -- ablation`
//! quantifies how much each mechanism contributes:
//!
//! 1. PU reservation split (Figure 11 concurrency gain);
//! 2. completion-reorder buffer size (Figure 8 collapse threshold);
//! 3. DDIO on/off (Figure 7 host skew immunity);
//! 4. SoC PCIe MTU (Figure 8 packet blowup / Advice #2);
//! 5. doorbell-batching window (Figure 10 polarity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nicsim::{PathKind, Verb};
use rdma_sim::{PostCostModel, PosterKind};
use simnet::time::Nanos;
use snic_core::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use topology::{MachineSpec, NicDevice};

fn micro() -> Scenario {
    Scenario {
        warmup: Nanos::from_micros(50),
        duration: Nanos::from_micros(350),
        ..Scenario::default()
    }
}

/// A Bluefield machine with one knob turned.
fn custom(modify: impl FnOnce(&mut MachineSpec)) -> ServerKind {
    let mut m = MachineSpec::srv_with_bluefield();
    modify(&mut m);
    ServerKind::Custom(m)
}

fn ablation_pu_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/pu_split");
    for reserved in [0u32, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(reserved), &reserved, |b, &r| {
            let server = custom(|m| {
                if let NicDevice::SmartNic(s) = &mut m.nic {
                    s.nic.pu_reserved_per_endpoint = r;
                }
            });
            // Single-path zero-byte load: a path alone can only use the
            // shared pool plus its own reserved units, so its peak is
            // (total - reserved)/t — the reservation split is invisible
            // to the concurrent total (always all units) but caps each
            // path alone, which is what Figure 11 observes.
            let run = || {
                let sc = Scenario { server, ..micro() };
                let a = StreamSpec::new(PathKind::Snic1, Verb::Read, 0, 8).with_window(16);
                run_scenario(&sc, &[a]).streams[0].ops.as_mops()
            };
            eprintln!(
                "[ablation pu_split={r}] SNIC(1) alone = {:.0} M reqs/s",
                run()
            );
            b.iter(run)
        });
    }
    g.finish();
}

fn ablation_reorder_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/reorder_buffer");
    for slots in [36u64 << 10, 72 << 10, 144 << 10] {
        g.bench_with_input(BenchmarkId::from_parameter(slots >> 10), &slots, |b, &s| {
            let server = custom(|m| {
                if let NicDevice::SmartNic(sp) = &mut m.nic {
                    sp.nic.reorder_tlp_slots = s;
                }
            });
            // 8 MB READ to the SoC: collapsed iff 8 MB exceeds
            // slots * 128 B.
            let run = || {
                let sc = Scenario {
                    server,
                    warmup: Nanos::from_millis(8),
                    duration: Nanos::from_millis(40),
                    ..Scenario::default()
                };
                let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 8 << 20, 2)
                    .with_threads(2)
                    .with_window(2);
                run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
            };
            eprintln!(
                "[ablation reorder_slots={}K] 8MB SoC READ = {:.0} Gbps",
                s >> 10,
                run()
            );
            b.iter(run)
        });
    }
    g.finish();
}

fn ablation_ddio(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ddio");
    for ddio in [true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(ddio), &ddio, |b, &on| {
            let server = custom(|m| m.host.ddio = on);
            // Hot-line WRITEs to *host* memory (128 B range = one
            // channel stripe): the LLC absorbs them under DDIO; without
            // it they serialize on one DRAM channel's open row.
            let run = || {
                let sc = Scenario { server, ..micro() };
                let spec = StreamSpec::new(PathKind::Snic1, Verb::Write, 64, 5).with_range(128);
                run_scenario(&sc, &[spec]).streams[0].ops.as_mops()
            };
            eprintln!(
                "[ablation ddio={on}] hot-line host WRITE = {:.0} M reqs/s",
                run()
            );
            b.iter(run)
        });
    }
    g.finish();
}

fn ablation_soc_mtu(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/soc_mtu");
    for mtu in [128u64, 256, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(mtu), &mtu, |b, &m_| {
            let server = custom(|m| {
                if let NicDevice::SmartNic(s) = &mut m.nic {
                    s.soc.pcie_mtu = m_;
                }
            });
            // Large READ to the SoC: the collapse threshold scales
            // with the MTU (slots * MTU).
            let run = || {
                let sc = Scenario {
                    server,
                    warmup: Nanos::from_millis(8),
                    duration: Nanos::from_millis(40),
                    ..Scenario::default()
                };
                let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 12 << 20, 2)
                    .with_threads(2)
                    .with_window(2);
                run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
            };
            eprintln!("[ablation soc_mtu={m_}] 12MB SoC READ = {:.0} Gbps", run());
            b.iter(run)
        });
    }
    g.finish();
}

fn ablation_doorbell(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/doorbell_batch");
    let soc = PostCostModel::new(&MachineSpec::srv_with_bluefield(), PosterKind::SocCore);
    let host = PostCostModel::new(&MachineSpec::srv_with_bluefield(), PosterKind::HostCpu);
    for batch in [1u32, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &n| {
            b.iter(|| {
                let mode = if n == 1 {
                    rdma_sim::PostMode::Mmio
                } else {
                    rdma_sim::PostMode::Doorbell(n)
                };
                soc.posting_rate_mops(mode) + host.posting_rate_mops(mode)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_pu_split, ablation_reorder_buffer, ablation_ddio,
        ablation_soc_mtu, ablation_doorbell
}
criterion_main!(benches);
