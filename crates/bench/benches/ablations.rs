//! Ablation benches for the design choices flagged in DESIGN.md §7.
//!
//! Each ablation varies one architectural parameter of the model and
//! measures the figure metric it drives, so `cargo bench --bench
//! ablations` quantifies how much each mechanism contributes:
//!
//! 1. PU reservation split (Figure 11 concurrency gain);
//! 2. completion-reorder buffer size (Figure 8 collapse threshold);
//! 3. DDIO on/off (Figure 7 host skew immunity);
//! 4. SoC PCIe MTU (Figure 8 packet blowup / Advice #2);
//! 5. doorbell-batching window (Figure 10 polarity).
//!
//! Runs on the in-tree harness (`snic_bench::timing`); tune with
//! `BENCH_SAMPLES` / `BENCH_WARMUP`.

use nicsim::{PathKind, Verb};
use rdma_sim::{PostCostModel, PosterKind};
use simnet::time::Nanos;
use snic_bench::timing::Bench;
use snic_core::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use topology::{MachineSpec, NicDevice};

fn micro() -> Scenario {
    Scenario {
        warmup: Nanos::from_micros(50),
        duration: Nanos::from_micros(350),
        ..Scenario::default()
    }
}

/// A Bluefield machine with one knob turned.
fn custom(modify: impl FnOnce(&mut MachineSpec)) -> ServerKind {
    let mut m = MachineSpec::srv_with_bluefield();
    modify(&mut m);
    ServerKind::Custom(m)
}

fn ablation_pu_split(b: &Bench) {
    for reserved in [0u32, 3, 6] {
        let server = custom(|m| {
            if let NicDevice::SmartNic(s) = &mut m.nic {
                s.nic.pu_reserved_per_endpoint = reserved;
            }
        });
        // Single-path zero-byte load: a path alone can only use the
        // shared pool plus its own reserved units, so its peak is
        // (total - reserved)/t — the reservation split is invisible
        // to the concurrent total (always all units) but caps each
        // path alone, which is what Figure 11 observes.
        let run = || {
            let sc = Scenario { server, ..micro() };
            let a = StreamSpec::new(PathKind::Snic1, Verb::Read, 0, 8).with_window(16);
            run_scenario(&sc, &[a]).streams[0].ops.as_mops()
        };
        eprintln!(
            "[ablation pu_split={reserved}] SNIC(1) alone = {:.0} M reqs/s",
            run()
        );
        b.run(&format!("ablation/pu_split/{reserved}"), run);
    }
}

fn ablation_reorder_buffer(b: &Bench) {
    for slots in [36u64 << 10, 72 << 10, 144 << 10] {
        let server = custom(|m| {
            if let NicDevice::SmartNic(sp) = &mut m.nic {
                sp.nic.reorder_tlp_slots = slots;
            }
        });
        // 8 MB READ to the SoC: collapsed iff 8 MB exceeds
        // slots * 128 B.
        let run = || {
            let sc = Scenario {
                server,
                warmup: Nanos::from_millis(8),
                duration: Nanos::from_millis(40),
                ..Scenario::default()
            };
            let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 8 << 20, 2)
                .with_threads(2)
                .with_window(2);
            run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
        };
        eprintln!(
            "[ablation reorder_slots={}K] 8MB SoC READ = {:.0} Gbps",
            slots >> 10,
            run()
        );
        b.run(&format!("ablation/reorder_buffer/{}K", slots >> 10), run);
    }
}

fn ablation_ddio(b: &Bench) {
    for ddio in [true, false] {
        let server = custom(|m| m.host.ddio = ddio);
        // Hot-line WRITEs to *host* memory (128 B range = one
        // channel stripe): the LLC absorbs them under DDIO; without
        // it they serialize on one DRAM channel's open row.
        let run = || {
            let sc = Scenario { server, ..micro() };
            let spec = StreamSpec::new(PathKind::Snic1, Verb::Write, 64, 5).with_range(128);
            run_scenario(&sc, &[spec]).streams[0].ops.as_mops()
        };
        eprintln!(
            "[ablation ddio={ddio}] hot-line host WRITE = {:.0} M reqs/s",
            run()
        );
        b.run(&format!("ablation/ddio/{ddio}"), run);
    }
}

fn ablation_soc_mtu(b: &Bench) {
    for mtu in [128u64, 256, 512] {
        let server = custom(|m| {
            if let NicDevice::SmartNic(s) = &mut m.nic {
                s.soc.pcie_mtu = mtu;
            }
        });
        // Large READ to the SoC: the collapse threshold scales
        // with the MTU (slots * MTU).
        let run = || {
            let sc = Scenario {
                server,
                warmup: Nanos::from_millis(8),
                duration: Nanos::from_millis(40),
                ..Scenario::default()
            };
            let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 12 << 20, 2)
                .with_threads(2)
                .with_window(2);
            run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
        };
        eprintln!("[ablation soc_mtu={mtu}] 12MB SoC READ = {:.0} Gbps", run());
        b.run(&format!("ablation/soc_mtu/{mtu}"), run);
    }
}

fn ablation_doorbell(b: &Bench) {
    let soc = PostCostModel::new(&MachineSpec::srv_with_bluefield(), PosterKind::SocCore);
    let host = PostCostModel::new(&MachineSpec::srv_with_bluefield(), PosterKind::HostCpu);
    for batch in [1u32, 16, 64] {
        b.run(&format!("ablation/doorbell_batch/{batch}"), || {
            let mode = if batch == 1 {
                rdma_sim::PostMode::Mmio
            } else {
                rdma_sim::PostMode::Doorbell(batch)
            };
            soc.posting_rate_mops(mode) + host.posting_rate_mops(mode)
        });
    }
}

fn main() {
    let b = Bench::from_env(10);
    ablation_pu_split(&b);
    ablation_reorder_buffer(&b);
    ablation_ddio(&b);
    ablation_soc_mtu(&b);
    ablation_doorbell(&b);
}
