//! One representative point of every paper figure, as a Criterion bench:
//! `cargo bench` therefore exercises the full experiment matrix end to
//! end (with micro horizons; the figure binaries run the full sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use nicsim::{PathKind, Verb};
use simnet::time::Nanos;
use snic_core::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use snic_core::model::{BottleneckModel, LatencyModel, PacketModel};
use snic_kvstore::{Design, KeyDist, KvConfig};

/// A scenario short enough to iterate under Criterion.
fn micro() -> Scenario {
    Scenario {
        warmup: Nanos::from_micros(50),
        duration: Nanos::from_micros(350),
        ..Scenario::default()
    }
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/snic1_read_64b_throughput", |b| {
        b.iter(|| {
            let spec = StreamSpec::new(PathKind::Snic1, Verb::Read, 64, 5);
            run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
        })
    });
    c.bench_function("fig4/latency_model_all_paths", |b| {
        let m = LatencyModel::paper_testbed();
        b.iter(|| {
            PathKind::ALL
                .iter()
                .map(|&p| m.predict(p, Verb::Read, 64).as_nanos())
                .sum::<u64>()
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5/read_write_multiplex", |b| {
        b.iter(|| {
            let mut a = StreamSpec::new(PathKind::Snic1, Verb::Read, 4096, 4).with_window(8);
            a.clients = vec![0, 1];
            let mut w = StreamSpec::new(PathKind::Snic1, Verb::Write, 4096, 4).with_window(8);
            w.clients = vec![2, 3];
            run_scenario(&micro(), &[a, w]).total_goodput().as_gbps()
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7/soc_write_narrow_range", |b| {
        b.iter(|| {
            let spec = StreamSpec::new(PathKind::Snic2, Verb::Write, 64, 5).with_range(1536);
            run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8/soc_read_12mb_collapsed", |b| {
        b.iter(|| {
            let sc = Scenario {
                warmup: Nanos::from_millis(2),
                duration: Nanos::from_millis(12),
                ..Scenario::default()
            };
            let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 12 << 20, 2)
                .with_threads(2)
                .with_window(2);
            run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9/s2h_256kb_peak", |b| {
        b.iter(|| {
            let sc = Scenario {
                warmup: Nanos::from_millis(1),
                duration: Nanos::from_millis(6),
                ..Scenario::default()
            };
            let spec = StreamSpec::new(PathKind::Snic3S2H, Verb::Read, 256 << 10, 1)
                .with_threads(4)
                .with_window(3);
            run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10/doorbell_model_sweep", |b| {
        let m = rdma_sim::PostCostModel::new(
            &topology::MachineSpec::srv_with_bluefield(),
            rdma_sim::PosterKind::SocCore,
        );
        b.iter(|| (1..=80).map(|n| m.db_speedup(n)).sum::<f64>())
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11/zero_byte_saturation", |b| {
        b.iter(|| {
            let spec = StreamSpec::new(PathKind::Snic1, Verb::Read, 0, 5).with_window(16);
            run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/packet_model", |b| {
        let m = PacketModel::default();
        b.iter(|| {
            PathKind::ALL
                .iter()
                .map(|&p| m.packets(p, 1 << 20).total())
                .sum::<u64>()
        })
    });
    c.bench_function("table3/bottleneck_model", |b| {
        let m = BottleneckModel::bluefield2();
        b.iter(|| {
            m.path3_budget().as_gbps()
                + m.concurrent_limit(PathKind::Snic1, PathKind::Snic3H2S)
                    .as_gbps()
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/kv_gets_soc_offload", |b| {
        let cfg = KvConfig {
            n_keys: 2000,
            index_buckets: 1024,
            value_size: 256,
            n_clients: 2,
        };
        b.iter(|| {
            snic_kvstore::run_gets(Design::SocIndex, cfg, 50, KeyDist::Uniform, 3).gets_per_sec
        })
    });
}

fn bench_rnic_baseline(c: &mut Criterion) {
    c.bench_function("baseline/rnic_read_64b", |b| {
        b.iter(|| {
            let sc = Scenario {
                server: ServerKind::Rnic,
                ..micro()
            };
            let spec = StreamSpec::new(PathKind::Rnic1, Verb::Read, 64, 5);
            run_scenario(&sc, &[spec]).streams[0].ops.as_mops()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig7, bench_fig8, bench_fig9,
        bench_fig10, bench_fig11, bench_table3, bench_fig1, bench_rnic_baseline
}
criterion_main!(benches);
