//! One representative point of every paper figure, as a timed bench:
//! `cargo bench` therefore exercises the full experiment matrix end to
//! end (with micro horizons; the figure binaries run the full sweeps).
//!
//! Runs on the in-tree harness (`snic_bench::timing`); tune with
//! `BENCH_SAMPLES` / `BENCH_WARMUP`.

use nicsim::{PathKind, Verb};
use simnet::time::Nanos;
use snic_bench::timing::Bench;
use snic_core::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use snic_core::model::{BottleneckModel, LatencyModel, PacketModel};
use snic_kvstore::{Design, KeyDist, KvConfig};

/// A scenario short enough to iterate under the timing harness.
fn micro() -> Scenario {
    Scenario {
        warmup: Nanos::from_micros(50),
        duration: Nanos::from_micros(350),
        ..Scenario::default()
    }
}

fn bench_fig4(b: &Bench) {
    b.run("fig4/snic1_read_64b_throughput", || {
        let spec = StreamSpec::new(PathKind::Snic1, Verb::Read, 64, 5);
        run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
    });
    let m = LatencyModel::paper_testbed();
    b.run("fig4/latency_model_all_paths", || {
        PathKind::ALL
            .iter()
            .map(|&p| m.predict(p, Verb::Read, 64).as_nanos())
            .sum::<u64>()
    });
}

fn bench_fig5(b: &Bench) {
    b.run("fig5/read_write_multiplex", || {
        let mut a = StreamSpec::new(PathKind::Snic1, Verb::Read, 4096, 4).with_window(8);
        a.clients = vec![0, 1];
        let mut w = StreamSpec::new(PathKind::Snic1, Verb::Write, 4096, 4).with_window(8);
        w.clients = vec![2, 3];
        run_scenario(&micro(), &[a, w]).total_goodput().as_gbps()
    });
}

fn bench_fig7(b: &Bench) {
    b.run("fig7/soc_write_narrow_range", || {
        let spec = StreamSpec::new(PathKind::Snic2, Verb::Write, 64, 5).with_range(1536);
        run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
    });
}

fn bench_fig8(b: &Bench) {
    b.run("fig8/soc_read_12mb_collapsed", || {
        let sc = Scenario {
            warmup: Nanos::from_millis(2),
            duration: Nanos::from_millis(12),
            ..Scenario::default()
        };
        let spec = StreamSpec::new(PathKind::Snic2, Verb::Read, 12 << 20, 2)
            .with_threads(2)
            .with_window(2);
        run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
    });
}

fn bench_fig9(b: &Bench) {
    b.run("fig9/s2h_256kb_peak", || {
        let sc = Scenario {
            warmup: Nanos::from_millis(1),
            duration: Nanos::from_millis(6),
            ..Scenario::default()
        };
        let spec = StreamSpec::new(PathKind::Snic3S2H, Verb::Read, 256 << 10, 1)
            .with_threads(4)
            .with_window(3);
        run_scenario(&sc, &[spec]).streams[0].goodput.as_gbps()
    });
}

fn bench_fig10(b: &Bench) {
    let m = rdma_sim::PostCostModel::new(
        &topology::MachineSpec::srv_with_bluefield(),
        rdma_sim::PosterKind::SocCore,
    );
    b.run("fig10/doorbell_model_sweep", || {
        (1..=80).map(|n| m.db_speedup(n)).sum::<f64>()
    });
}

fn bench_fig11(b: &Bench) {
    b.run("fig11/zero_byte_saturation", || {
        let spec = StreamSpec::new(PathKind::Snic1, Verb::Read, 0, 5).with_window(16);
        run_scenario(&micro(), &[spec]).streams[0].ops.as_mops()
    });
}

fn bench_table3(b: &Bench) {
    let pm = PacketModel::default();
    b.run("table3/packet_model", || {
        PathKind::ALL
            .iter()
            .map(|&p| pm.packets(p, 1 << 20).total())
            .sum::<u64>()
    });
    let bm = BottleneckModel::bluefield2();
    b.run("table3/bottleneck_model", || {
        bm.path3_budget().as_gbps()
            + bm.concurrent_limit(PathKind::Snic1, PathKind::Snic3H2S)
                .as_gbps()
    });
}

fn bench_fig1(b: &Bench) {
    let cfg = KvConfig {
        n_keys: 2000,
        index_buckets: 1024,
        value_size: 256,
        n_clients: 2,
    };
    b.run("fig1/kv_gets_soc_offload", || {
        snic_kvstore::run_gets(Design::SocIndex, cfg, 50, KeyDist::Uniform, 3).gets_per_sec
    });
}

fn bench_rnic_baseline(b: &Bench) {
    b.run("baseline/rnic_read_64b", || {
        let sc = Scenario {
            server: ServerKind::Rnic,
            ..micro()
        };
        let spec = StreamSpec::new(PathKind::Rnic1, Verb::Read, 64, 5);
        run_scenario(&sc, &[spec]).streams[0].ops.as_mops()
    });
}

fn main() {
    let b = Bench::from_env(10);
    bench_fig4(&b);
    bench_fig5(&b);
    bench_fig7(&b);
    bench_fig8(&b);
    bench_fig9(&b);
    bench_fig10(&b);
    bench_fig11(&b);
    bench_table3(&b);
    bench_fig1(&b);
    bench_rnic_baseline(&b);
}
