//! Host-side residency table: which pages live in host DRAM, with
//! age-based demotion and miss-triggered promotion.
//!
//! The state machine per page (DESIGN.md §13):
//!
//! ```text
//!            touch (hit)                    promote (miss resolved)
//!        ┌───────────────┐             ┌────────────────────────────┐
//!        ▼               │             │                            │
//!   RESIDENT ──demote_aged (idle ≥ age)──▶ FAR (clean)              │
//!        │                                  FAR (dirty: write-back) │
//!        └──evicted by promote at capacity──▶ ──────────────────────┘
//! ```
//!
//! Recency order is kept in a `BTreeMap` keyed by a monotonic touch
//! tick — never by HashMap iteration — so eviction and aging decisions
//! are identical across runs and worker counts.

use std::collections::{BTreeMap, HashMap};

use simnet::Nanos;

/// A page leaving host DRAM; `dirty` means its contents must be
/// written back to the far tier (clean demotions just drop the copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demotion {
    /// The demoted page.
    pub page: u64,
    /// Whether the resident copy was modified since promotion.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tick: u64,
    last_touch: Nanos,
    dirty: bool,
}

/// The host residency table: a bounded set of resident pages with LRU
/// recency, age-based demotion, and hit/miss/demotion accounting.
#[derive(Debug)]
pub struct ResidencyTable {
    cap: usize,
    demote_age: Nanos,
    pages: HashMap<u64, Entry>,
    lru: BTreeMap<u64, u64>,
    next_tick: u64,
    /// Accesses that found the page resident.
    pub hits: u64,
    /// Accesses that missed (and will trigger a promotion).
    pub misses: u64,
    /// Pages demoted (aged out or evicted at capacity).
    pub demotions: u64,
    /// Demotions that carried a dirty page (write-back required).
    pub writebacks: u64,
}

impl ResidencyTable {
    /// An empty table holding at most `cap` resident pages and aging
    /// out entries idle for `demote_age`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize, demote_age: Nanos) -> Self {
        assert!(cap > 0, "residency capacity must be positive");
        ResidencyTable {
            cap,
            demote_age,
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            hits: 0,
            misses: 0,
            demotions: 0,
            writebacks: 0,
        }
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether `page` is currently resident (no accounting).
    pub fn resident(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Record an access to `page`. Returns `true` on a hit (recency
    /// and dirtiness updated); on a miss the caller must fetch the
    /// page from the far tier and call [`promote`](Self::promote) when
    /// it lands.
    pub fn touch(&mut self, now: Nanos, page: u64, write: bool) -> bool {
        let tick = self.next_tick;
        match self.pages.get_mut(&page) {
            Some(e) => {
                self.lru.remove(&e.tick);
                e.tick = tick;
                e.last_touch = now;
                e.dirty |= write;
                self.lru.insert(tick, page);
                self.next_tick += 1;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Install `page` as resident (the promotion completing a miss).
    /// If the table is full the least-recently-touched page is evicted
    /// first and pushed onto `out` for the caller to demote. If `page`
    /// is already resident — two misses on it raced before the first
    /// promotion landed — only recency and dirtiness are refreshed.
    pub fn promote(&mut self, now: Nanos, page: u64, write: bool, out: &mut Vec<Demotion>) {
        if let Some(e) = self.pages.get_mut(&page) {
            let tick = self.next_tick;
            self.next_tick += 1;
            self.lru.remove(&e.tick);
            e.tick = tick;
            e.last_touch = now;
            e.dirty |= write;
            self.lru.insert(tick, page);
            return;
        }
        if self.pages.len() >= self.cap {
            let (&tick, &victim) = self.lru.iter().next().expect("full table has an LRU");
            self.lru.remove(&tick);
            let e = self.pages.remove(&victim).expect("LRU entry is resident");
            self.account_demotion(victim, e.dirty, out);
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.pages.insert(
            page,
            Entry {
                tick,
                last_touch: now,
                dirty: write,
            },
        );
        self.lru.insert(tick, page);
    }

    /// Demote every resident page idle since before `now - demote_age`,
    /// oldest first, pushing each onto `out`.
    pub fn demote_aged(&mut self, now: Nanos, out: &mut Vec<Demotion>) {
        let cutoff = now.as_nanos().saturating_sub(self.demote_age.as_nanos());
        loop {
            let Some((&tick, &page)) = self.lru.iter().next() else {
                return;
            };
            let e = self.pages[&page];
            if e.last_touch.as_nanos() > cutoff {
                return;
            }
            self.lru.remove(&tick);
            self.pages.remove(&page);
            self.account_demotion(page, e.dirty, out);
        }
    }

    fn account_demotion(&mut self, page: u64, dirty: bool, out: &mut Vec<Demotion>) {
        self.demotions += 1;
        if dirty {
            self.writebacks += 1;
        }
        out.push(Demotion { page, dirty });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Nanos {
        Nanos::new(n)
    }

    #[test]
    fn miss_then_promote_then_hit() {
        let mut t = ResidencyTable::new(4, ns(100));
        let mut out = Vec::new();
        assert!(!t.touch(ns(1), 7, false));
        t.promote(ns(2), 7, false, &mut out);
        assert!(t.touch(ns(3), 7, true));
        assert!(out.is_empty());
        assert_eq!((t.hits, t.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_lru_and_reports_dirtiness() {
        let mut t = ResidencyTable::new(2, ns(1_000_000));
        let mut out = Vec::new();
        t.promote(ns(1), 1, true, &mut out); // dirty
        t.promote(ns(2), 2, false, &mut out);
        t.touch(ns(3), 2, false); // 1 is now LRU
        t.promote(ns(4), 3, false, &mut out);
        assert_eq!(
            out,
            vec![Demotion {
                page: 1,
                dirty: true
            }]
        );
        assert_eq!((t.demotions, t.writebacks), (1, 1));
        assert!(!t.resident(1) && t.resident(2) && t.resident(3));
    }

    #[test]
    fn aging_demotes_idle_pages_oldest_first() {
        let mut t = ResidencyTable::new(8, ns(10));
        let mut out = Vec::new();
        t.promote(ns(0), 1, false, &mut out);
        t.promote(ns(5), 2, true, &mut out);
        t.promote(ns(20), 3, false, &mut out);
        t.demote_aged(ns(16), &mut out);
        assert_eq!(
            out,
            vec![
                Demotion {
                    page: 1,
                    dirty: false
                },
                Demotion {
                    page: 2,
                    dirty: true
                }
            ]
        );
        assert!(t.resident(3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn racing_promotion_refreshes_instead_of_duplicating() {
        let mut t = ResidencyTable::new(4, ns(100));
        let mut out = Vec::new();
        t.promote(ns(1), 5, false, &mut out);
        t.promote(ns(2), 5, true, &mut out);
        assert_eq!(t.len(), 1);
        assert!(out.is_empty());
        // The refresh kept the page and marked it dirty.
        t.demote_aged(ns(200), &mut out);
        assert_eq!(
            out,
            vec![Demotion {
                page: 5,
                dirty: true
            }]
        );
    }

    #[test]
    fn touch_refreshes_age() {
        let mut t = ResidencyTable::new(8, ns(10));
        let mut out = Vec::new();
        t.promote(ns(0), 1, false, &mut out);
        t.touch(ns(9), 1, false);
        t.demote_aged(ns(15), &mut out);
        assert!(out.is_empty());
        assert!(t.resident(1));
    }
}
