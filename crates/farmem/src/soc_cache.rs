//! SoC-side serving layer: an inclusive hot-page cache in SoC DRAM.
//!
//! The SmartNIC SoC dedicates a slab of its 1-channel DDR4 to far
//! memory: a small contiguous *slot* region ([`FM_CACHE_BASE`]) holds
//! the hottest pages; the rest of the pool is a *backing* region
//! ([`FM_BACKING_BASE`]) with hashed page placement to spread bank
//! conflicts. Every page movement is costed through the shared
//! [`MemSystem`] bank model, so cache-miss storms contend for the one
//! channel exactly as the paper's §4 memory experiments predict.
//!
//! Coherence contract (checked by a HashMap-oracle property test): a
//! `get` observes the stamp of the most recent `put` for that page —
//! through the hot cache on a hit, through backing write-back +
//! re-read on the eviction path — and never a stale or foreign stamp.

use std::collections::{BTreeMap, HashMap};

use memsys::{MemOp, MemSystem};
use simnet::Nanos;

use crate::{FM_BACKING_BASE, FM_CACHE_BASE};

/// Span of the hashed backing region in pages (256 MB at 4 KB pages).
const BACKING_SPAN_PAGES: u64 = 1 << 16;

/// SplitMix64 finalizer: spreads page ids over the backing region so
/// bank mapping does not correlate with access order.
fn mix(page: u64) -> u64 {
    let mut z = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of [`SocPageCache::serve_get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocGet {
    /// When the page is resident in its cache slot (metadata resolved,
    /// miss fill complete). The payload transfer off the slot is a
    /// separate [`SocPageCache::read_page`]/DMA step.
    pub ready: Nanos,
    /// Whether the hot cache already held the page.
    pub hit: bool,
    /// SoC DRAM address of the page's cache slot.
    pub slot_addr: u64,
    /// Version stamp of the page contents (0 if never written).
    pub stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tick: u64,
    slot: usize,
    stamp: u64,
    dirty: bool,
}

/// The inclusive hot-page cache plus backing region, in SoC DRAM.
#[derive(Debug)]
pub struct SocPageCache {
    mem: MemSystem,
    cap: usize,
    page_bytes: u64,
    entries: HashMap<u64, Slot>,
    lru: BTreeMap<u64, u64>,
    free: Vec<usize>,
    backing: HashMap<u64, u64>,
    next_tick: u64,
    /// `serve_get` calls.
    pub gets: u64,
    /// `serve_put` calls.
    pub puts: u64,
    /// Gets answered from the hot cache.
    pub hits: u64,
    /// Gets that had to fill from backing.
    pub misses: u64,
    /// Pages evicted from the hot cache.
    pub evictions: u64,
    /// Evictions that wrote a dirty page back to backing.
    pub writebacks: u64,
}

impl SocPageCache {
    /// An empty cache of `cap` page slots over a fresh SoC memory
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or `page_bytes` is zero.
    pub fn new(cap: usize, page_bytes: u64) -> Self {
        assert!(cap > 0, "cache needs at least one slot");
        assert!(page_bytes > 0, "pages need at least one byte");
        SocPageCache {
            mem: MemSystem::soc_like(),
            cap,
            page_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            free: (0..cap).rev().collect(),
            backing: HashMap::new(),
            next_tick: 0,
            gets: 0,
            puts: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// Whether the hot cache currently holds `page`.
    pub fn cached(&self, page: u64) -> bool {
        self.entries.contains_key(&page)
    }

    /// Pages currently in the hot cache.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the hot cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot_addr(&self, slot: usize) -> u64 {
        FM_CACHE_BASE + slot as u64 * self.page_bytes
    }

    fn backing_addr(&self, page: u64) -> u64 {
        FM_BACKING_BASE + (mix(page) % BACKING_SPAN_PAGES) * self.page_bytes
    }

    fn touch(&mut self, page: u64) {
        let tick = self.next_tick;
        self.next_tick += 1;
        let e = self.entries.get_mut(&page).expect("touching a cached page");
        self.lru.remove(&e.tick);
        e.tick = tick;
        self.lru.insert(tick, page);
    }

    /// Evict the LRU page if the cache is full, writing it back to
    /// backing when dirty. Returns the time the slot is reusable.
    fn make_room(&mut self, now: Nanos) -> Nanos {
        if self.entries.len() < self.cap {
            return now;
        }
        let (&tick, &victim) = self.lru.iter().next().expect("full cache has an LRU");
        self.lru.remove(&tick);
        let e = self.entries.remove(&victim).expect("LRU entry is cached");
        self.free.push(e.slot);
        self.evictions += 1;
        if e.dirty {
            self.writebacks += 1;
            self.backing.insert(victim, e.stamp);
            let addr = self.backing_addr(victim);
            return self
                .mem
                .dma_access(now, addr, self.page_bytes, MemOp::Write);
        }
        now
    }

    fn install(&mut self, now: Nanos, page: u64, stamp: u64, dirty: bool) -> (usize, Nanos) {
        let t = self.make_room(now);
        let slot = self.free.pop().expect("room was just made");
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(
            page,
            Slot {
                tick,
                slot,
                stamp,
                dirty,
            },
        );
        self.lru.insert(tick, page);
        let done = self
            .mem
            .dma_access(t, self.slot_addr(slot), self.page_bytes, MemOp::Write);
        (slot, done)
    }

    /// Resolve a far-memory `get` for `page`: a hit pins the slot; a
    /// miss evicts (write-back if dirty), reads the page from backing
    /// and fills the slot, all through the SoC DRAM bank model.
    pub fn serve_get(&mut self, now: Nanos, page: u64) -> SocGet {
        self.gets += 1;
        if let Some(e) = self.entries.get(&page).copied() {
            self.hits += 1;
            self.touch(page);
            return SocGet {
                ready: now,
                hit: true,
                slot_addr: self.slot_addr(e.slot),
                stamp: e.stamp,
            };
        }
        self.misses += 1;
        let stamp = self.backing.get(&page).copied().unwrap_or(0);
        let t = self
            .mem
            .dma_access(now, self.backing_addr(page), self.page_bytes, MemOp::Read);
        let (slot, ready) = self.install(t, page, stamp, false);
        SocGet {
            ready,
            hit: false,
            slot_addr: self.slot_addr(slot),
            stamp,
        }
    }

    /// Stream the page payload out of its cache slot (the SoC→wire or
    /// SoC→DMA-engine read). Returns the data-ready time.
    pub fn read_page(&mut self, now: Nanos, slot_addr: u64) -> Nanos {
        self.mem
            .dma_access(now, slot_addr, self.page_bytes, MemOp::Read)
    }

    /// Absorb a demoted page: install (or refresh) it in the hot cache
    /// as dirty with version `stamp`. Returns the install-complete
    /// time.
    pub fn serve_put(&mut self, now: Nanos, page: u64, stamp: u64) -> Nanos {
        self.puts += 1;
        if let Some(e) = self.entries.get_mut(&page) {
            e.stamp = stamp;
            e.dirty = true;
            let slot = e.slot;
            self.touch(page);
            return self
                .mem
                .dma_access(now, self.slot_addr(slot), self.page_bytes, MemOp::Write);
        }
        let (_, done) = self.install(now, page, stamp, true);
        done
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use simnet::prop::{check, Gen};
    use simnet::{prop_assert, prop_assert_eq, Nanos};

    use super::SocPageCache;

    #[test]
    fn get_hit_after_put() {
        let mut c = SocPageCache::new(4, 4096);
        let t = c.serve_put(Nanos::ZERO, 9, 1);
        let g = c.serve_get(t, 9);
        assert!(g.hit);
        assert_eq!(g.stamp, 1);
        assert_eq!((c.hits, c.misses), (1, 0));
    }

    #[test]
    fn miss_fills_from_backing_and_costs_dram_time() {
        let mut c = SocPageCache::new(4, 4096);
        let g = c.serve_get(Nanos::ZERO, 3);
        assert!(!g.hit);
        assert_eq!(g.stamp, 0);
        assert!(g.ready > Nanos::ZERO, "fill must cost bank time");
        assert!(c.serve_get(g.ready, 3).hit, "fill is inclusive");
    }

    #[test]
    fn eviction_writes_back_dirty_stamp() {
        let mut c = SocPageCache::new(2, 4096);
        let mut t = c.serve_put(Nanos::ZERO, 1, 41);
        t = c.serve_put(t, 2, 42);
        t = c.serve_put(t, 3, 43); // evicts dirty page 1
        assert_eq!((c.evictions, c.writebacks), (1, 1));
        assert!(!c.cached(1));
        let g = c.serve_get(t, 1);
        assert!(!g.hit);
        assert_eq!(g.stamp, 41, "write-back preserved the stamp");
    }

    /// HashMap-oracle coherence property: against a plain map of
    /// page→stamp, every `get` must observe the latest `put` stamp
    /// regardless of hit/miss/eviction/write-back path, and the hot
    /// cache never exceeds its capacity. A parallel recency list
    /// predicts hit/miss exactly, pinning the LRU policy.
    #[test]
    fn prop_cache_matches_hashmap_oracle() {
        check("soc_cache_hashmap_oracle", |g: &mut Gen| {
            let cap = g.usize(1..9);
            let pages = g.u64(1..24);
            let mut cache = SocPageCache::new(cap, 4096);
            let mut oracle: HashMap<u64, u64> = HashMap::new();
            let mut recency: Vec<u64> = Vec::new();
            let mut now = Nanos::ZERO;
            let mut stamp = 0u64;
            let n = g.usize(1..200);
            for _ in 0..n {
                let page = g.u64(0..pages);
                let expect_hit = recency.contains(&page);
                if g.bool() {
                    stamp += 1;
                    oracle.insert(page, stamp);
                    now = cache.serve_put(now, page, stamp);
                } else {
                    let got = cache.serve_get(now, page);
                    prop_assert_eq!(got.hit, expect_hit, "LRU hit prediction");
                    prop_assert_eq!(
                        got.stamp,
                        oracle.get(&page).copied().unwrap_or(0),
                        "stale or foreign stamp observed"
                    );
                    prop_assert!(got.ready >= now, "time must not run backwards");
                    now = got.ready;
                }
                recency.retain(|&p| p != page);
                recency.push(page);
                if recency.len() > cap {
                    recency.remove(0);
                }
                prop_assert!(cache.len() <= cap, "cache exceeded capacity");
                prop_assert_eq!(cache.len(), recency.len(), "cache size drifts from model");
            }
            Ok(())
        });
    }
}
