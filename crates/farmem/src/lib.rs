//! `snic-farmem` — the far-memory tier: SmartNIC SoC DRAM as a
//! disaggregated memory pool for the host.
//!
//! The paper observes that an off-path SmartNIC ships with gigabytes of
//! idle SoC DRAM; this crate characterizes *when* using it as a far
//! memory tier beats paging to a conventional backing store. Hosts keep
//! a bounded set of 4 KB pages resident in host DRAM and demote cold
//! pages to SoC DRAM — **local** SoC DRAM over path ③ (two PCIe1
//! crossings) or a **remote** machine's SoC DRAM over path ② (wire, no
//! PCIe1 crossing):
//!
//! * [`access::PageAccessGen`] — deterministic page-access generator:
//!   a Zipf-skewed hot working set reused with probability `reuse`,
//!   cold uniform accesses otherwise;
//! * [`residency::ResidencyTable`] — the host-side residency policy:
//!   age-based demotion, miss-triggered promotion with write-back of
//!   dirty victims;
//! * [`soc_cache::SocPageCache`] — the SoC-side serving layer over
//!   [`memsys::MemSystem::soc_like`]: an inclusive hot-page cache with
//!   LRU eviction in front of a larger backing region, every byte
//!   movement costed through the 1-channel SoC DRAM bank model.
//!
//! The cluster runtime (`snic-cluster`) wires these into the
//! 23-machine testbed as a dedicated stream kind; experiment
//! `18_farmem` sweeps placement, cache size and degraded-PCIe windows
//! into the viability frontier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod residency;
pub mod soc_cache;

pub use access::{PageAccess, PageAccessGen};
pub use residency::{Demotion, ResidencyTable};
pub use soc_cache::{SocGet, SocPageCache};

use simnet::Nanos;

/// Far-memory request/response header bytes on the wire (opcode, page
/// id, stamp, credits) — same envelope size as the KV request header.
pub const FM_REQ_BYTES: u64 = 32;

/// Host DRAM hit cost charged when an accessed page is resident: one
/// cache-missing 64 B load/store out of host DDR4 (the residency check
/// itself is a hash probe folded into the same figure).
pub const FM_HOST_HIT: Nanos = Nanos::new(100);

/// Base address of the SoC hot-page cache slots (contiguous region).
pub const FM_CACHE_BASE: u64 = 1 << 33;

/// Base address of the SoC backing page region (hashed placement).
pub const FM_BACKING_BASE: u64 = 1 << 34;

/// Where a host places its demoted pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmPlacement {
    /// Path ③: the host's own SmartNIC SoC DRAM, two PCIe1 crossings
    /// per transfer, exposed to PCIe degradation windows.
    LocalSoc,
    /// Path ②: a remote machine's SoC DRAM over the wire, terminating
    /// at the SoC without crossing its PCIe1.
    RemoteSoc,
}

/// Configuration of one far-memory stream: the access pattern, the
/// host residency policy, the SoC cache, and the baseline it must beat.
#[derive(Debug, Clone, Copy)]
pub struct FmStreamSpec {
    /// Where demoted pages live.
    pub placement: FmPlacement,
    /// Total pages in the address space of one host.
    pub n_pages: u64,
    /// Pages in the hot working set (Zipf-reused head of the space).
    pub working_set: u64,
    /// Probability an access re-uses the hot working set.
    pub reuse: f64,
    /// Zipf skew within the working set (`theta`, 0 = uniform).
    pub theta: f64,
    /// Probability an access is a store (dirties the page).
    pub write_fraction: f64,
    /// Host-resident page capacity; misses promote, evicting the LRU
    /// resident when full.
    pub resident_cap: usize,
    /// Residency entries untouched for this long are demoted.
    pub demote_age: Nanos,
    /// SoC hot-page cache capacity in pages.
    pub soc_cache_pages: usize,
    /// Miss penalty of the conventional backing store the far-memory
    /// tier competes against (NVMe-class read). The viability frontier
    /// compares effective far-memory AMAT against an all-host-DRAM
    /// hierarchy that pays this on every residency miss.
    pub miss_penalty: Nanos,
    /// Page size in bytes (the transfer unit on both paths).
    pub page_bytes: u64,
}

impl FmStreamSpec {
    /// The default tier: 4 KB pages, 2 Ki-page hot set reused 90 % of
    /// the time under Zipf(0.99), 1 Ki resident pages, 512-page SoC
    /// cache, against a 2.5 µs backing-store miss.
    pub fn new(placement: FmPlacement) -> Self {
        FmStreamSpec {
            placement,
            n_pages: 1 << 16,
            working_set: 2048,
            reuse: 0.9,
            theta: 0.99,
            write_fraction: 0.2,
            resident_cap: 1024,
            demote_age: Nanos::new(20_000),
            soc_cache_pages: 512,
            miss_penalty: Nanos::new(2_500),
            page_bytes: 4096,
        }
    }

    /// Flatten the access pattern: every page equally likely, no
    /// working-set reuse (the regime where far memory should lose).
    pub fn zipf_flat(mut self) -> Self {
        self.reuse = 0.0;
        self.theta = 0.0;
        self
    }

    /// Override the SoC hot-page cache capacity.
    pub fn cache_pages(mut self, pages: usize) -> Self {
        self.soc_cache_pages = pages;
        self
    }

    /// Override the working-set reuse probability.
    pub fn reuse_prob(mut self, reuse: f64) -> Self {
        self.reuse = reuse;
        self
    }

    /// Override the backing-store miss penalty being competed against.
    pub fn backing_miss(mut self, penalty: Nanos) -> Self {
        self.miss_penalty = penalty;
        self
    }
}
