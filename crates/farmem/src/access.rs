//! Deterministic page-access generation: working-set reuse + Zipf skew.
//!
//! Mirrors the access pattern far-memory papers assume: most accesses
//! hit a small, Zipf-skewed hot set; the remainder scatter uniformly
//! over the cold tail. Built on the forked-RNG discipline of
//! `simnet::arrivals` — each stream owns a `SimRng` fork, so the trace
//! is a pure function of the scenario seed regardless of worker count.

use simnet::rng::{SimRng, Zipf};

/// One generated access: which page and whether it stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// Page index in `0..n_pages`.
    pub page: u64,
    /// `true` when the access dirties the page.
    pub write: bool,
}

/// A deterministic generator of [`PageAccess`]es.
pub struct PageAccessGen {
    rng: SimRng,
    zipf: Zipf,
    n_pages: u64,
    working_set: u64,
    reuse: f64,
    write_fraction: f64,
}

impl PageAccessGen {
    /// Build a generator owning the forked `rng`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < working_set <= n_pages`.
    pub fn new(
        rng: SimRng,
        n_pages: u64,
        working_set: u64,
        reuse: f64,
        theta: f64,
        write_fraction: f64,
    ) -> Self {
        assert!(working_set > 0, "empty working set");
        assert!(working_set <= n_pages, "working set exceeds page space");
        PageAccessGen {
            rng,
            zipf: Zipf::new(working_set as usize, theta),
            n_pages,
            working_set,
            reuse,
            write_fraction,
        }
    }

    /// Draw the next access. Hot draws sample the Zipf distribution
    /// over the working set; cold draws are uniform over the tail
    /// (falling back to the working set when there is no tail).
    pub fn next_access(&mut self) -> PageAccess {
        let write = self.rng.chance(self.write_fraction);
        let hot = self.rng.chance(self.reuse);
        let page = if hot || self.working_set == self.n_pages {
            self.zipf.sample(&mut self.rng) as u64
        } else {
            self.working_set + self.rng.uniform_u64(self.n_pages - self.working_set)
        };
        PageAccess { page, write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64, reuse: f64, theta: f64) -> PageAccessGen {
        PageAccessGen::new(SimRng::seed(seed), 1 << 16, 2048, reuse, theta, 0.2)
    }

    #[test]
    fn trace_is_deterministic() {
        let mut a = gen(7, 0.9, 0.99);
        let mut b = gen(7, 0.9, 0.99);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn high_reuse_concentrates_in_working_set() {
        let mut g = gen(11, 0.9, 0.99);
        let n = 10_000;
        let hot = (0..n).filter(|_| g.next_access().page < 2048).count() as f64;
        assert!(hot / n as f64 > 0.85, "hot fraction {}", hot / n as f64);
    }

    #[test]
    fn flat_pattern_spreads_over_whole_space() {
        let mut g = gen(13, 0.0, 0.0);
        let n = 10_000;
        let hot = (0..n).filter(|_| g.next_access().page < 2048).count() as f64;
        // 2048/65536 = 3.125 % of the space.
        assert!(hot / (n as f64) < 0.08, "hot fraction {}", hot / n as f64);
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = gen(17, 0.9, 0.99);
        let n = 10_000;
        let writes = (0..n).filter(|_| g.next_access().write).count() as f64;
        let frac = writes / n as f64;
        assert!((0.15..0.25).contains(&frac), "write fraction {frac}");
    }
}
