#!/usr/bin/env bash
# Tier-1 gate: hermetic build + tests + formatting.
#
# --offline is load-bearing, not an optimization: the workspace has a
# zero-external-dependency policy (see the root Cargo.toml and
# DESIGN.md), and running cargo with the network forbidden proves no PR
# can reintroduce a registry dependency — resolution itself would fail
# right here before a single test runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# The parallel cluster runtime must actually prove worker-count
# invariance — fault-free, with the fault plane active, under open-loop
# arrival chains, with the KV service's online advisor re-placing the
# index, with the far-memory tier promoting/demoting pages, AND with
# the BF-3 DPA plane serving gets: run the six dedicated tests by
# name and refuse a run where the filter silently matched anything else (a rename would otherwise turn the
# gate into a no-op).
det_out=$(cargo test --release --offline -p offpath-smartnic --test determinism \
    cluster_worker_count_invariance 2>&1) || {
    echo "$det_out"
    echo "ci.sh: cluster determinism tests FAILED" >&2
    exit 1
}
if ! grep -q "6 passed" <<<"$det_out"; then
    echo "$det_out"
    echo "ci.sh: expected exactly cluster_worker_count_invariance +" \
        "cluster_worker_count_invariance_with_faults +" \
        "cluster_worker_count_invariance_openloop +" \
        "cluster_worker_count_invariance_kv +" \
        "cluster_worker_count_invariance_farmem +" \
        "cluster_worker_count_invariance_dpa (filtered out or renamed?)" >&2
    exit 1
fi

# Smoke the cluster runtime end to end through its example, and the
# fault-injection, open-loop, KV-service, far-memory and BF-3 DPA
# sweeps through the figure runner.
cargo run --release --offline -p offpath-smartnic --example incast -- --quick
cargo run --release --offline -p snic-bench --bin run_all -- --only 15 --quick
cargo run --release --offline -p snic-bench --bin run_all -- --only 16 --quick
cargo run --release --offline -p snic-bench --bin run_all -- --only 17 --quick
cargo run --release --offline -p snic-bench --bin run_all -- --only 18 --quick
cargo run --release --offline -p snic-bench --bin run_all -- --only 19 --quick

# Perf-trajectory smoke: run the macro-bench suite at minimum sample
# count, then re-parse the emitted snapshot and require every expected
# bench key with sane throughput fields — a broken emitter (or a bench
# that stops reporting events) fails tier-1 here, not in the next PR's
# baseline comparison.
bench_snap=$(mktemp -t bench_smoke.XXXXXX.json)
trap 'rm -f "$bench_snap"' EXIT
BENCH_SAMPLES=3 BENCH_WARMUP=0 cargo run --release --offline -p snic-bench \
    --bin perf -- --out "$bench_snap"
cargo run --release --offline -p snic-bench --bin perf -- --check "$bench_snap"

echo "ci.sh: build + tests + fmt + clippy + cluster determinism + bench smoke all green (offline)"
