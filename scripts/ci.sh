#!/usr/bin/env bash
# Tier-1 gate: hermetic build + tests + formatting.
#
# --offline is load-bearing, not an optimization: the workspace has a
# zero-external-dependency policy (see the root Cargo.toml and
# DESIGN.md), and running cargo with the network forbidden proves no PR
# can reintroduce a registry dependency — resolution itself would fail
# right here before a single test runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "ci.sh: build + tests + fmt + clippy all green (offline)"
