#!/usr/bin/env bash
# Tier-1 gate: hermetic build + tests + formatting.
#
# --offline is load-bearing, not an optimization: the workspace has a
# zero-external-dependency policy (see the root Cargo.toml and
# DESIGN.md), and running cargo with the network forbidden proves no PR
# can reintroduce a registry dependency — resolution itself would fail
# right here before a single test runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# The parallel cluster runtime must actually prove worker-count
# invariance: run the dedicated test by name and refuse a run where the
# filter silently matched nothing (a rename would otherwise turn the
# gate into a no-op).
det_out=$(cargo test --release --offline -p offpath-smartnic --test determinism \
    cluster_worker_count_invariance 2>&1) || {
    echo "$det_out"
    echo "ci.sh: cluster determinism test FAILED" >&2
    exit 1
}
if ! grep -q "1 passed" <<<"$det_out"; then
    echo "$det_out"
    echo "ci.sh: cluster_worker_count_invariance did not run (filtered out?)" >&2
    exit 1
fi

# Smoke the cluster runtime end to end through its example.
cargo run --release --offline -p offpath-smartnic --example incast -- --quick

echo "ci.sh: build + tests + fmt + clippy + cluster determinism all green (offline)"
