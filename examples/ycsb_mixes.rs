//! YCSB-style mixed workloads across the four KV-store designs — where
//! does SmartNIC offloading pay under realistic read/update mixes?
//!
//! Run with `cargo run --release --example ycsb_mixes`.

use offpath_smartnic::kvstore::KeyDist;
use offpath_smartnic::study::experiments::kv_tables::ycsb_table;

fn main() {
    println!("{}", ycsb_table(true, KeyDist::Uniform).to_text());
    println!("{}", ycsb_table(true, KeyDist::Zipf(0.99)).to_text());
    println!(
        "Reading the tables: the SoC-offloaded design holds a flat p99\n\
         across mixes (one round trip regardless of index load), while\n\
         the one-sided designs' tails grow with skew — the Figure 1\n\
         story under production-like mixes."
    );
}
