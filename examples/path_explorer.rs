//! Interactive-style sweep: latency and peak throughput of every
//! communication path at a few payload sizes — a miniature Figure 4.
//!
//! Run with `cargo run --release --example path_explorer`.

use offpath_smartnic::nicsim::{PathKind, Verb};
use offpath_smartnic::study::harness::{measure_latency, measure_throughput};
use offpath_smartnic::study::model::LatencyModel;

fn main() {
    let payloads = [64u64, 512, 4096];
    let model = LatencyModel::paper_testbed();

    for verb in [Verb::Read, Verb::Write] {
        println!("== {} ==", verb.label());
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>14}",
            "path", "payload", "p50 [us]", "model [us]", "peak [M/s]"
        );
        for path in PathKind::ALL {
            for &p in &payloads {
                let lat = measure_latency(path, verb, p);
                let tput = measure_throughput(path, verb, p);
                println!(
                    "{:<12} {:>8} {:>12.2} {:>12.2} {:>14.1}",
                    path.label(),
                    p,
                    lat.latency.p50.as_micros_f64(),
                    model.predict(path, verb, p).as_micros_f64(),
                    tput.ops.as_mops(),
                );
            }
        }
        println!();
    }
    println!(
        "Reading the table: SNIC(2) READ beats SNIC(1) (the SoC is closer\n\
         to the NIC), path-3 S2H pays the SoC's MMIO tax, and the analytic\n\
         model column cross-checks the simulator on unloaded latency."
    );
}
