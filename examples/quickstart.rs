//! Quickstart: open the simulated testbed, issue RDMA verbs over each
//! SmartNIC communication path, and ask the advisor about a workload.
//!
//! Run with `cargo run --release --example quickstart`.

use offpath_smartnic::nicsim::{Endpoint, Fabric, PathKind, Verb};
use offpath_smartnic::rdma::verbs::{Context, QpType};
use offpath_smartnic::simnet::time::Nanos;
use offpath_smartnic::study::advisor::{OffloadAdvisor, WorkloadDesc};

fn main() {
    // A Bluefield-2 server plus two client machines (the paper's testbed
    // in miniature).
    let ctx = Context::new(Fabric::bluefield_testbed(2));
    let pd = ctx.alloc_pd();
    let cq = pd.create_cq();

    // Register 1 MiB in host memory and 1 MiB in SoC memory.
    let host_mr = pd.register_mr(Endpoint::Host, 0x10_0000, 1 << 20);
    let soc_mr = pd.register_mr(Endpoint::Soc, 0x20_0000, 1 << 20);

    // One RC queue pair per path.
    let mut qp_host = pd.create_qp(QpType::Rc, PathKind::Snic1, 0, &cq);
    let mut qp_soc = pd.create_qp(QpType::Rc, PathKind::Snic2, 0, &cq);

    println!("== one-sided READ latency, path 1 (host) vs path 2 (SoC) ==");
    // Unloaded latency methodology: one request at a time, spaced out so
    // they never share a queue (paper §2.4 uses a single requester).
    for (i, (name, qp, mr)) in [
        ("client -> host (SNIC 1)", &mut qp_host, &host_mr),
        ("client -> SoC  (SNIC 2)", &mut qp_soc, &soc_mr),
    ]
    .into_iter()
    .enumerate()
    {
        let t0 = Nanos::from_micros(10 + i as u64 * 50);
        qp.post_read(t0, mr, 4096, 64).expect("in-bounds read");
        let done = cq.next_event_time().expect("completion pending");
        let wc = &cq.poll(done)[0];
        println!("  {name}: {}", wc.timing.latency());
    }

    println!("\n== advisor check: 16 MB READs against the SoC ==");
    let advisor = OffloadAdvisor::bluefield2();
    let findings = advisor.analyse(&WorkloadDesc {
        path: PathKind::Snic2,
        verb: Verb::Read,
        payload: 16 << 20,
        addr_range: 1 << 30,
        batch: 1,
        nic_saturated: false,
    });
    for f in findings {
        println!("  [advice #{} {:?}] {}", f.advice, f.severity, f.message);
    }

    println!("\n== safe host<->SoC budget when the NIC is saturated ==");
    println!("  P - N = {}", advisor.path3_budget());
}
