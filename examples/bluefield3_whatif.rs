//! What changes on Bluefield-3? The §5 Discussion what-ifs: rescaled
//! budgets and knees (the anomalies persist), plus the CXL suggestion.
//!
//! Run with `cargo run --release --example bluefield3_whatif`.

use offpath_smartnic::study::experiments::discussion;

fn main() {
    for t in discussion::run(true) {
        println!("{}", t.to_text());
    }
    println!(
        "Takeaway: Bluefield-3 keeps the off-path architecture, so every\n\
         guideline survives with new constants — budget path 3 to ~104\n\
         Gbps, segment READs at 18 MB — and CXL would remove the path-3\n\
         packet tax entirely."
    );
}
