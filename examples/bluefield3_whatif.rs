//! What changes on Bluefield-3? The §5 Discussion what-ifs: rescaled
//! budgets and knees (the anomalies persist), plus the CXL suggestion —
//! and a *measured* Gen5 what-if: the same remote sweep executed against
//! a BF-2 server (Gen4 ×16 PCIe) and a BF-3-class server whose
//! `PcieLinkSpec` is Gen5 ×16, written to `results/bluefield3_whatif.csv`,
//! plus the far-memory viability frontier re-run on Gen5 servers
//! (`results/bluefield3_whatif_farmem.csv`).
//!
//! Run with `cargo run --release --example bluefield3_whatif`.

use offpath_smartnic::cluster::ClusterScenario;
use offpath_smartnic::nicsim::{PathKind, Verb};
use offpath_smartnic::study::experiments::{discussion, farmem};
use offpath_smartnic::study::harness::{run_scenario, Scenario, ServerKind, StreamSpec};
use offpath_smartnic::study::report::{fmt_bytes, Table};
use offpath_smartnic::study::BottleneckModel;
use offpath_smartnic::topology::{MachineSpec, NicDevice, SmartNicSpec};

fn main() {
    for t in discussion::run(true) {
        println!("{}", t.to_text());
    }

    let bf3 = MachineSpec::srv_with_bluefield3();
    let NicDevice::SmartNic(snic) = &bf3.nic else {
        unreachable!("srv_with_bluefield3 embeds a SmartNIC");
    };
    let bf2_spec = SmartNicSpec::bluefield2();
    let mut table = Table::new(
        format!(
            "§5: Gen5 PCIe what-if, measured (PCIe1 raw {:.0} Gbps vs BF-2's {:.0})",
            snic.pcie1.raw_bandwidth().as_gbps(),
            bf2_spec.pcie1.raw_bandwidth().as_gbps()
        ),
        &[
            "path",
            "verb",
            "payload [B]",
            "BF-2 [M/s]",
            "BF-3 [M/s]",
            "speedup",
        ],
    );
    let measure = |server: ServerKind, path: PathKind, payload: u64| {
        let s = Scenario {
            server,
            seed: 11,
            ..Scenario::default()
        };
        run_scenario(&s, &[StreamSpec::new(path, Verb::Read, payload, 8)])
            .total_ops()
            .as_mops()
    };
    for path in [PathKind::Snic1, PathKind::Snic2] {
        for payload in [64u64, 4096] {
            let bf2 = measure(ServerKind::Bluefield, path, payload);
            let gen5 = measure(ServerKind::Custom(bf3), path, payload);
            table.push(vec![
                path.label().to_string(),
                Verb::Read.label().to_string(),
                payload.to_string(),
                format!("{bf2:.1}"),
                format!("{gen5:.1}"),
                format!("{:.2}x", gen5 / bf2),
            ]);
        }
    }
    println!("{}", table.to_text());
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/bluefield3_whatif.csv";
    std::fs::write(path, table.to_csv()).expect("write csv");
    println!("wrote {path}");

    // The far-memory frontier on Gen5: path ③ promotions cross PCIe1
    // twice, so doubling the link moves the local placement's knee —
    // while path ② (wire-terminated at the SoC) barely shifts.
    let mut gen5_sc = ClusterScenario::quick();
    gen5_sc.cluster.servers = vec![MachineSpec::srv_with_bluefield3(); 3];
    let bf2_sc = ClusterScenario::quick();
    let mut fm_table = Table::new(
        "§5: far-memory frontier on Gen5 PCIe (mean access latency vs the fixed-penalty baseline; viable < 1.0)",
        &[
            "regime",
            "placement",
            "BF-2 mean [us]",
            "BF-3 mean [us]",
            "BF-2 vs_base",
            "BF-3 vs_base",
        ],
    );
    for case in farmem::cases() {
        for (name, p) in farmem::placements() {
            let bf2 = farmem::point_on(&bf2_sc, &case, case.stream_spec(p));
            let bf3 = farmem::point_on(&gen5_sc, &case, case.stream_spec(p));
            fm_table.push(vec![
                case.name.to_string(),
                name.to_string(),
                format!("{:.2}", farmem::mean_us(&bf2)),
                format!("{:.2}", farmem::mean_us(&bf3)),
                format!("{:.2}", farmem::mean_us(&bf2) / farmem::baseline_us(&bf2)),
                format!("{:.2}", farmem::mean_us(&bf3) / farmem::baseline_us(&bf3)),
            ]);
        }
    }
    println!("{}", fm_table.to_text());
    let fm_path = "results/bluefield3_whatif_farmem.csv";
    std::fs::write(fm_path, fm_table.to_csv()).expect("write csv");
    println!("wrote {fm_path}");

    // The takeaway's constants are *derived from the live spec*, so a
    // recalibration of the BF-3 topology can never desync the prose.
    let path3_budget = BottleneckModel::from_spec(snic).path3_budget().as_gbps();
    let read_knee = snic.nic.reorder_tlp_slots * snic.soc.pcie_mtu;
    println!(
        "Takeaway: Bluefield-3 keeps the off-path architecture, so every\n\
         guideline survives with new constants — budget path 3 to ~{:.0}\n\
         Gbps, segment READs at {} — and CXL would remove the path-3\n\
         packet tax entirely.",
        path3_budget,
        fmt_bytes(read_knee)
    );
}
