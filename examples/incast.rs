//! Incast on the rack-scale cluster runtime: N client machines fan 4 KB
//! WRITEs into one Bluefield-2 responder through the SB7890's per-port
//! arbitration, each machine a shard on its own worker thread.
//!
//! Run with `cargo run --release --example incast` (add `--quick` for a
//! shortened sweep).

use offpath_smartnic::cluster::{run_cluster, ClusterScenario, ClusterStream};
use offpath_smartnic::nicsim::{PathKind, Verb};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fan_in: &[usize] = if quick {
        &[1, 2, 8, 20]
    } else {
        &[1, 2, 3, 4, 6, 8, 10, 12, 16, 20]
    };

    println!(
        "{:>7} {:>13} {:>7} {:>8} {:>8} {:>7} {:>9}",
        "clients", "goodput_gbps", "mops", "p50_us", "p99_us", "epochs", "messages"
    );
    for &n in fan_in {
        let scenario = if quick {
            ClusterScenario::quick()
        } else {
            ClusterScenario::paper_testbed()
        };
        let stream = ClusterStream::new(PathKind::Snic1, Verb::Write, 4096, (0..n).collect());
        let r = run_cluster(&scenario, &[stream]);
        let s = &r.streams[0];
        println!(
            "{:>7} {:>13.1} {:>7.2} {:>8.1} {:>8.1} {:>7} {:>9}",
            n,
            s.goodput.as_gbps(),
            s.ops.as_mops(),
            s.latency.p50.as_nanos() as f64 / 1e3,
            s.latency.p99.as_nanos() as f64 / 1e3,
            r.epochs,
            r.messages,
        );
    }
    println!(
        "\nTwo 100 Gbps clients saturate the responder's 200 Gbps NIC (two\n\
         bonded switch ports); past that, goodput plateaus and the tail\n\
         latency knee is queueing at the responder's downlinks. Results\n\
         are byte-identical for any worker count (see DESIGN.md, Cluster\n\
         runtime)."
    );
}
