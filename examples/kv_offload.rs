//! The Figure 1 scenario as an application: a distributed KV store
//! served four ways, under a collision-heavy index.
//!
//! Run with `cargo run --release --example kv_offload`.

use offpath_smartnic::kvstore::{run_gets, Design, KeyDist, KvConfig};

fn main() {
    // A deliberately loaded index (85% full) so one-sided lookups need
    // multiple probe round trips — the "network amplification" of §2.1.
    let cfg = KvConfig {
        n_keys: 3500,
        index_buckets: 1024,
        value_size: 512,
        n_clients: 2,
    };

    println!("KV get comparison (3500 keys, 512 B values, loaded index)\n");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>12}",
        "design", "mean [us]", "p99 [us]", "trips", "gets/s"
    );
    for d in Design::ALL {
        let s = run_gets(d, cfg, 1000, KeyDist::Uniform, 42);
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>8.2} {:>12.0}",
            d.label(),
            s.mean_latency.as_micros_f64(),
            s.p99_latency.as_micros_f64(),
            s.mean_trips,
            s.gets_per_sec,
        );
    }

    println!("\nSkewed (zipf 0.99) workload, SoC-offloaded design:");
    let s = run_gets(Design::SocIndex, cfg, 1000, KeyDist::Zipf(0.99), 42);
    println!(
        "  mean {:.2} us, p99 {:.2} us, {:.0} gets/s",
        s.mean_latency.as_micros_f64(),
        s.p99_latency.as_micros_f64(),
        s.gets_per_sec
    );
    println!(
        "\nNote: the offloaded design trades host-CPU work for path-3\n\
         transfers — size values and rates against the P-N budget (see\n\
         the fig_concurrent_budget binary)."
    );
}
