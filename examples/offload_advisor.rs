//! The offload advisor applied to a catalogue of realistic offloading
//! plans — each of the paper's four advices firing on the plan that
//! violates it.
//!
//! Run with `cargo run --release --example offload_advisor`.

use offpath_smartnic::nicsim::{PathKind, Verb};
use offpath_smartnic::study::advisor::{OffloadAdvisor, Severity, WorkloadDesc};

fn main() {
    let advisor = OffloadAdvisor::bluefield2();

    let plans: Vec<(&str, WorkloadDesc)> = vec![
        (
            "lock table on the SoC (64 B CAS-like writes, hot 1.5 KB region)",
            WorkloadDesc {
                path: PathKind::Snic2,
                verb: Verb::Write,
                payload: 64,
                addr_range: 1536,
                batch: 1,
                nic_saturated: false,
            },
        ),
        (
            "bulk checkpoint fetch from SoC staging memory (16 MB READs)",
            WorkloadDesc {
                path: PathKind::Snic2,
                verb: Verb::Read,
                payload: 16 << 20,
                addr_range: 8 << 30,
                batch: 16,
                nic_saturated: false,
            },
        ),
        (
            "host->SoC shuffle while serving clients at line rate (8 MB blocks)",
            WorkloadDesc {
                path: PathKind::Snic3H2S,
                verb: Verb::Write,
                payload: 8 << 20,
                addr_range: 8 << 30,
                batch: 32,
                nic_saturated: true,
            },
        ),
        (
            "SoC-side log shipper posting one request at a time",
            WorkloadDesc {
                path: PathKind::Snic3S2H,
                verb: Verb::Write,
                payload: 4096,
                addr_range: 1 << 30,
                batch: 1,
                nic_saturated: false,
            },
        ),
        (
            "well-behaved: 256 B writes to host memory, wide range, batched",
            WorkloadDesc {
                path: PathKind::Snic1,
                verb: Verb::Write,
                payload: 256,
                addr_range: 1 << 30,
                batch: 32,
                nic_saturated: false,
            },
        ),
    ];

    for (name, desc) in plans {
        println!("plan: {name}");
        let findings = advisor.analyse(&desc);
        let worst = findings
            .iter()
            .map(|f| f.severity)
            .max()
            .expect("four checks always run");
        if worst == Severity::Ok {
            println!("  clean: no anomaly expected\n");
            continue;
        }
        for f in findings.iter().filter(|f| f.severity != Severity::Ok) {
            println!("  [advice #{} {:?}] {}", f.advice, f.severity, f.message);
        }
        // Show the concrete mitigation for oversized reads.
        if desc.verb == Verb::Read && desc.payload > advisor.read_collapse_threshold() {
            let chunks = advisor.segment_read(desc.payload);
            println!(
                "  -> segmented into {} chunks of <= {} bytes",
                chunks.len(),
                chunks[0]
            );
        }
        println!();
    }
}
