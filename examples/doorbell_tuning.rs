//! Doorbell-batching tuning across requester locations (Advice #4 /
//! Figure 10): batching is mandatory on the SoC, mildly harmful
//! host-side at small batches, and a small win from clients.
//!
//! Run with `cargo run --release --example doorbell_tuning`.

use offpath_smartnic::rdma::{PostCostModel, PostMode, PosterKind};
use offpath_smartnic::topology::MachineSpec;

fn main() {
    let posters = [
        ("client machine", PosterKind::Client, MachineSpec::cli()),
        (
            "host CPU (H2S)",
            PosterKind::HostCpu,
            MachineSpec::srv_with_bluefield(),
        ),
        (
            "SoC core (S2H)",
            PosterKind::SocCore,
            MachineSpec::srv_with_bluefield(),
        ),
    ];

    println!(
        "{:<16} {:>12} doorbell-batching speedup by batch size",
        "requester", "MMIO [M/s]"
    );
    println!(
        "{:<16} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7}",
        " ", " ", "8", "16", "32", "48", "80"
    );
    for (name, kind, machine) in posters {
        let m = PostCostModel::new(&machine, kind);
        let base = m.posting_rate_mops(PostMode::Mmio);
        let speedups: Vec<String> = [8, 16, 32, 48, 80]
            .iter()
            .map(|&n| format!("{:>6.2}x", m.db_speedup(n)))
            .collect();
        println!("{:<16} {:>12.2} {}", name, base, speedups.join(" "));
        let verdict = if m.db_speedup(16) > 1.5 {
            "always batch"
        } else if m.db_speedup(16) < 1.0 {
            "post inline at small batches"
        } else {
            "batch for modest gains"
        };
        println!("{:<16} -> {}", "", verdict);
    }
}
